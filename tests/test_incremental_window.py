"""Tests for incremental NN iteration, window queries, and describe()."""

import numpy as np
import pytest

from repro.analysis import describe
from repro.indexes import INDEX_KINDS, build_index

TREE_KINDS = [k for k in sorted(INDEX_KINDS) if k != "linear"]
ALL_KINDS = sorted(INDEX_KINDS)


@pytest.fixture(scope="module")
def cloud():
    return np.random.default_rng(2024).random((400, 5))


class TestIterNearest:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_full_iteration_is_sorted_and_complete(self, kind, cloud):
        index = build_index(kind, cloud)
        q = cloud[3]
        neighbors = list(index.iter_nearest(q))
        assert len(neighbors) == len(cloud)
        dists = [n.distance for n in neighbors]
        assert dists == sorted(dists)
        assert sorted(n.value for n in neighbors) == list(range(len(cloud)))

    @pytest.mark.parametrize("kind", TREE_KINDS)
    def test_prefix_matches_knn(self, kind, cloud, rng):
        index = build_index(kind, cloud)
        q = rng.random(5)
        from itertools import islice

        lazy = [n.value for n in islice(index.iter_nearest(q), 15)]
        eager = [n.value for n in index.nearest(q, 15)]
        assert lazy == eager

    def test_lazy_reads_fewer_pages(self, cloud):
        index = build_index("srtree", cloud)
        q = cloud[0]

        index.store.drop_cache()
        before = index.stats.snapshot()
        iterator = index.iter_nearest(q)
        next(iterator)
        one_reads = index.stats.since(before).page_reads

        index.store.drop_cache()
        before = index.stats.snapshot()
        list(index.iter_nearest(q))
        all_reads = index.stats.since(before).page_reads
        assert one_reads < all_reads

    def test_max_distance_bound(self, cloud):
        index = build_index("srtree", cloud)
        q = cloud[0]
        bound = 0.5
        bounded = list(index.iter_nearest(q, max_distance=bound))
        assert all(n.distance <= bound for n in bounded)
        exact = index.within(q, bound)
        assert len(bounded) == len(exact)

    def test_empty_index(self):
        from repro.indexes import SRTree

        tree = SRTree(3)
        assert list(tree.iter_nearest([0.0, 0.0, 0.0])) == []


class TestWindow:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_matches_brute_force(self, kind, cloud):
        index = build_index(kind, cloud)
        low = np.full(5, 0.2)
        high = np.full(5, 0.7)
        got = sorted(n.value for n in index.window(low, high))
        inside = np.all(cloud >= low, axis=1) & np.all(cloud <= high, axis=1)
        expected = sorted(int(i) for i in np.nonzero(inside)[0])
        assert got == expected, kind

    @pytest.mark.parametrize("kind", ["srtree", "sstree", "rstar", "linear"])
    def test_empty_window(self, kind, cloud):
        index = build_index(kind, cloud)
        assert index.window(np.full(5, 2.0), np.full(5, 3.0)) == []

    @pytest.mark.parametrize("kind", ["srtree", "linear"])
    def test_degenerate_window_finds_exact_point(self, kind, cloud):
        index = build_index(kind, cloud)
        hits = index.window(cloud[17], cloud[17])
        assert 17 in [n.value for n in hits]

    def test_inverted_window_rejected(self, cloud):
        index = build_index("srtree", cloud)
        with pytest.raises(ValueError):
            index.window(np.full(5, 0.9), np.full(5, 0.1))

    def test_whole_space_returns_everything(self, cloud):
        index = build_index("srtree", cloud)
        hits = index.window(np.zeros(5), np.ones(5))
        assert len(hits) == len(cloud)

    def test_window_prunes_reads(self, cloud):
        index = build_index("srtree", cloud)
        index.store.drop_cache()
        before = index.stats.snapshot()
        index.window(np.full(5, 0.45), np.full(5, 0.55))
        narrow = index.stats.since(before).page_reads

        index.store.drop_cache()
        before = index.stats.snapshot()
        index.window(np.zeros(5), np.ones(5))
        full = index.stats.since(before).page_reads
        assert narrow < full


class TestLookup:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_finds_stored_point(self, kind, cloud):
        index = build_index(kind, cloud)
        assert index.lookup(cloud[42]) == [42]

    @pytest.mark.parametrize("kind", ["srtree", "kdb", "linear"])
    def test_absent_point_empty(self, kind, cloud):
        index = build_index(kind, cloud)
        assert index.lookup(np.full(5, 7.5)) == []

    def test_duplicates_all_returned(self):
        from repro.indexes import SRTree

        tree = SRTree(3)
        for tag in ("a", "b", "c"):
            tree.insert([0.5, 0.5, 0.5], tag)
        assert sorted(tree.lookup([0.5, 0.5, 0.5])) == ["a", "b", "c"]

    def test_kdb_lookup_is_cheap(self, cloud):
        # The K-D-B-tree's selling point (paper Section 2.1): point
        # queries touch one path; the overlapping trees may touch more.
        kdb = build_index("kdb", cloud)
        kdb.store.drop_cache()
        before = kdb.stats.snapshot()
        kdb.lookup(cloud[100])
        # One path plus at most a couple of boundary leaves.
        assert kdb.stats.since(before).page_reads <= kdb.height + 2


class TestDescribe:
    @pytest.mark.parametrize("kind", TREE_KINDS)
    def test_structure_consistent(self, kind, cloud):
        index = build_index(kind, cloud)
        info = describe(index)
        assert info.index_name == kind
        assert info.size == len(cloud)
        assert info.height == index.height
        assert len(info.levels) == index.height
        assert info.levels[0].entries == len(cloud)
        assert info.total_pages == index.leaf_count() + index.node_count()
        assert info.bytes_on_disk == info.total_pages * 8192

    @pytest.mark.parametrize("kind", ["rstar", "sstree", "srtree"])
    def test_dynamic_trees_guarantee_min_utilization(self, kind, cloud):
        # The R-tree family's 40 % guarantee (paper Section 2.2) — every
        # non-root page.
        index = build_index(kind, cloud)
        info = describe(index)
        for level in info.levels:
            if level.nodes > 1:  # the root is exempt
                assert level.min_entries >= index.leaf_min_fill if level.level == 0 \
                    else level.min_entries >= 1

    def test_kdb_utilization_not_guaranteed(self, rng):
        # The paper's criticism of the K-D-B-tree: it cannot enforce
        # minimum utilization (forced splits, no deletion rebalancing).
        # Drain one leaf below the 40 % bound and observe that the tree
        # tolerates it — a dynamic R-tree-family index would condense.
        pts = rng.random((200, 3))
        index = build_index("kdb", pts)
        leaf = next(l for l in index.iter_leaves() if l.count > 2)
        victims = [(leaf.points[i].copy(), leaf.values[i])
                   for i in range(leaf.count)]
        for point, value in victims[:-1]:
            index.delete(point, value=value)
        index.check_invariants()
        info = describe(index)
        assert info.levels[0].min_entries < index.leaf_min_fill

    def test_str_output(self, cloud):
        index = build_index("srtree", cloud)
        text = str(describe(index))
        assert "srtree" in text
        assert "level 0" in text
        assert "fill" in text

    def test_utilization_range(self, cloud):
        index = build_index("srtree", cloud)
        info = describe(index)
        assert 0.3 < info.leaf_utilization <= 1.0
