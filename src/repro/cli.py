"""Command-line interface: build, query, and inspect indexes from files.

Usage (also via ``python -m repro``)::

    # Generate a workload (NumPy .npy file of shape (N, D)).
    python -m repro generate --family cluster --size 10000 --dims 16 \\
        --out data.npy

    # Build a durable on-disk index over it.
    python -m repro build --kind srtree --data data.npy --out images.srtree

    # Inspect its structure.
    python -m repro info --index images.srtree

    # Query it: the k nearest neighbors of a point.
    python -m repro query --index images.srtree --point 0.1,0.2,... -k 21
    python -m repro query --index images.srtree --row 123 --data data.npy

The query command also reports the paper's cost metric (pages read by
the cold query).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from .analysis import describe
from .indexes import INDEX_KINDS, build_index, open_index
from .workloads import cluster_dataset, histogram_dataset, uniform_dataset

__all__ = ["main"]

_BUILDABLE = sorted(k for k in INDEX_KINDS)
_FAMILIES = ("uniform", "cluster", "real")


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ValueError, FileNotFoundError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SR-tree reproduction: build, query, and inspect "
                    "high-dimensional disk indexes.",
    )
    sub = parser.add_subparsers(required=True)

    generate = sub.add_parser("generate", help="generate a workload .npy file")
    generate.add_argument("--family", choices=_FAMILIES, default="uniform")
    generate.add_argument("--size", type=int, default=10000,
                          help="number of points")
    generate.add_argument("--dims", type=int, default=16)
    generate.add_argument("--clusters", type=int, default=100,
                          help="cluster count (cluster family only)")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output .npy path")
    generate.set_defaults(handler=_cmd_generate)

    build = sub.add_parser("build", help="build an on-disk index from a .npy file")
    build.add_argument("--kind", choices=_BUILDABLE, default="srtree")
    build.add_argument("--data", required=True, help="(N, D) .npy of points")
    build.add_argument("--out", required=True, help="output index file")
    build.add_argument("--page-size", type=int, default=8192)
    build.set_defaults(handler=_cmd_build)

    info = sub.add_parser("info", help="describe a saved index")
    info.add_argument("--index", required=True)
    info.set_defaults(handler=_cmd_info)

    query = sub.add_parser("query", help="k-NN query against a saved index")
    query.add_argument("--index", required=True)
    query.add_argument("-k", type=int, default=21)
    point = query.add_mutually_exclusive_group(required=True)
    point.add_argument("--point", help="comma-separated coordinates")
    point.add_argument("--row", type=int,
                       help="row of --data to use as the query point")
    query.add_argument("--data", help=".npy file for --row queries")
    query.set_defaults(handler=_cmd_query)

    return parser


def _cmd_generate(args) -> int:
    if args.family == "uniform":
        data = uniform_dataset(args.size, args.dims, seed=args.seed)
    elif args.family == "real":
        data = histogram_dataset(args.size, bins=args.dims, seed=args.seed)
    else:
        per_cluster = max(1, args.size // args.clusters)
        data = cluster_dataset(args.clusters, per_cluster, args.dims,
                               seed=args.seed)
    np.save(args.out, data)
    print(f"wrote {data.shape[0]} x {data.shape[1]} {args.family} points "
          f"to {args.out}")
    return 0


def _cmd_build(args) -> int:
    from .storage import FilePageFile

    data = np.load(args.data)
    if data.ndim != 2:
        raise ValueError(f"{args.data} does not hold an (N, D) point array")
    start = time.perf_counter()
    index = build_index(
        args.kind, data,
        pagefile=FilePageFile(args.out, page_size=args.page_size),
    )
    elapsed = time.perf_counter() - start
    index.close()
    print(f"built {args.kind} over {data.shape[0]} x {data.shape[1]} points "
          f"in {elapsed:.2f}s -> {args.out}")
    return 0


def _cmd_info(args) -> int:
    index = open_index(args.index)
    try:
        print(describe(index))
    finally:
        index.store.close()
    return 0


def _cmd_query(args) -> int:
    index = open_index(args.index)
    try:
        if args.point is not None:
            point = np.array([float(x) for x in args.point.split(",")])
        else:
            if not args.data:
                raise ValueError("--row requires --data")
            point = np.load(args.data)[args.row]
        index.store.drop_cache()
        before = index.stats.snapshot()
        start = time.perf_counter()
        neighbors = index.nearest(point, k=args.k)
        elapsed = (time.perf_counter() - start) * 1e3
        cost = index.stats.since(before)
        for n in neighbors:
            print(f"{n.distance:.6f}  {n.value!r}")
        print(f"-- {len(neighbors)} neighbors, {cost.page_reads} page reads "
              f"({cost.node_reads} node + {cost.leaf_reads} leaf), "
              f"{elapsed:.2f} ms")
    finally:
        index.store.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
