"""Binary page codec: node objects <-> fixed-size page images.

Every node is serialized into a single page.  The byte layout follows
:class:`~repro.storage.layout.NodeLayout`:

* header: kind (u8), flags (u8), level (u16), count (u32) — 8 bytes;
* leaf body: ``count`` points as contiguous float64, then ``count``
  fixed-width data areas, each holding a 4-byte length prefix and the
  pickled payload, zero-padded to ``leaf_data_size``;
* internal body: ``count`` child pointers (u32), then the optional
  weights (u32), rectangle bounds (2 x D float64), and sphere
  center/radius (D + 1 float64) blocks in that order.

The encoder asserts that the resulting image fits the page — by
construction it always does when ``count <= capacity``, and a node caught
mid-overflow (``count == capacity + 1``) is a programming error to
persist, reported as :class:`~repro.exceptions.PageOverflowError`.
"""

from __future__ import annotations

import pickle
import struct

import numpy as np

from ..exceptions import PageOverflowError, SerializationError
from .layout import NodeLayout
from .nodes import InternalNode, LeafNode

__all__ = ["NodeCodec"]

_HEADER = struct.Struct("<BBHIHH")  # kind, flags, level, count, extent, reserved
_KIND_LEAF = 0
_KIND_INTERNAL = 1
_FLAG_REINSERTED = 0x01
_LEN_PREFIX = struct.Struct("<I")
_PAGE_ID = struct.Struct("<I")


class NodeCodec:
    """Encodes and decodes nodes of one index family."""

    def __init__(self, layout: NodeLayout) -> None:
        self.layout = layout

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------

    def encode(self, node: LeafNode | InternalNode) -> bytes:
        """Serialize a node into an image of at most ``extent`` pages."""
        if node.is_leaf:
            capacity = self.layout.leaf_capacity
        else:
            capacity = self.layout.node_capacity_for(node.extent)
        if node.count > capacity:
            raise PageOverflowError(
                f"cannot persist node {node.page_id} with {node.count} entries "
                f"(capacity {capacity}): split it first"
            )
        flags = _FLAG_REINSERTED if node.reinserted else 0
        if node.is_leaf:
            body = self._encode_leaf_body(node)
            header = _HEADER.pack(_KIND_LEAF, flags, 0, node.count, 1, 0)
            continuation = b""
        else:
            body = self._encode_internal_body(node)
            header = _HEADER.pack(
                _KIND_INTERNAL, flags, node.level, node.count, node.extent, 0
            )
            continuation = b"".join(
                _PAGE_ID.pack(page) for page in node.extra_pages
            )
        image = header + continuation + body
        if len(image) > self.layout.page_size * node.extent:
            raise PageOverflowError(
                f"node {node.page_id} serialized to {len(image)} bytes, "
                f"extent is {node.extent} pages of {self.layout.page_size}"
            )
        return image

    @staticmethod
    def peek_extent(first_page: bytes) -> tuple[int, list[int]]:
        """Extent and continuation page ids from a node's first page.

        The node store uses this to know which further pages to fetch
        before :meth:`decode` can run on the assembled image.
        """
        if len(first_page) < _HEADER.size:
            raise SerializationError("page image too short to hold a header")
        _, _, _, _, extent, _ = _HEADER.unpack_from(first_page)
        extras = []
        offset = _HEADER.size
        for _ in range(extent - 1):
            (page,) = _PAGE_ID.unpack_from(first_page, offset)
            extras.append(page)
            offset += _PAGE_ID.size
        return extent, extras

    def _encode_leaf_body(self, leaf: LeafNode) -> bytes:
        parts = [leaf.points[: leaf.count].tobytes()]
        area = self.layout.leaf_data_size
        for value in leaf.values:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            if len(payload) + _LEN_PREFIX.size > area:
                raise SerializationError(
                    f"leaf payload pickles to {len(payload)} bytes; the data "
                    f"area is {area} bytes (including a 4-byte length prefix)"
                )
            slot = _LEN_PREFIX.pack(len(payload)) + payload
            parts.append(slot.ljust(area, b"\x00"))
        return b"".join(parts)

    def _encode_internal_body(self, node: InternalNode) -> bytes:
        n = node.count
        parts = [node.child_ids[:n].astype(np.uint32).tobytes()]
        if node.weights is not None:
            parts.append(node.weights[:n].astype(np.uint32).tobytes())
        if node.lows is not None:
            parts.append(node.lows[:n].tobytes())
            parts.append(node.highs[:n].tobytes())
        if node.centers is not None:
            parts.append(node.centers[:n].tobytes())
            parts.append(node.radii[:n].tobytes())
        return b"".join(parts)

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------

    def decode(self, page_id: int, data: bytes) -> LeafNode | InternalNode:
        """Reconstruct a node from its (possibly multi-page) image."""
        if len(data) < _HEADER.size:
            raise SerializationError(f"page {page_id}: image too short to hold a header")
        kind, flags, level, count, extent, _ = _HEADER.unpack_from(data)
        extras = []
        offset = _HEADER.size
        if kind == _KIND_INTERNAL and extent > 1:
            for _ in range(extent - 1):
                (page,) = _PAGE_ID.unpack_from(data, offset)
                extras.append(page)
                offset += _PAGE_ID.size
        body = data[offset:]
        if kind == _KIND_LEAF:
            node = self._decode_leaf(page_id, count, body)
        elif kind == _KIND_INTERNAL:
            node = self._decode_internal(page_id, level, count, body, extent)
            node.extra_pages = extras
        else:
            raise SerializationError(f"page {page_id}: unknown node kind {kind}")
        node.reinserted = bool(flags & _FLAG_REINSERTED)
        return node

    def _decode_leaf(self, page_id: int, count: int, body: bytes) -> LeafNode:
        dims = self.layout.dims
        if count > self.layout.leaf_capacity:
            raise SerializationError(
                f"page {page_id}: leaf count {count} exceeds capacity"
            )
        leaf = LeafNode(page_id, dims, self.layout.leaf_capacity)
        point_bytes = 8 * dims * count
        area = self.layout.leaf_data_size
        needed = point_bytes + area * count
        if len(body) < needed:
            raise SerializationError(f"page {page_id}: truncated leaf body")
        if count:
            pts = np.frombuffer(body, dtype=np.float64, count=dims * count)
            leaf.points[:count] = pts.reshape(count, dims)
        offset = point_bytes
        for _ in range(count):
            (length,) = _LEN_PREFIX.unpack_from(body, offset)
            start = offset + _LEN_PREFIX.size
            if length > area - _LEN_PREFIX.size:
                raise SerializationError(f"page {page_id}: corrupt payload length")
            try:
                leaf.values.append(pickle.loads(body[start : start + length]))
            except Exception as exc:  # pickle raises many types
                raise SerializationError(
                    f"page {page_id}: payload failed to unpickle: {exc}"
                ) from exc
            offset += area
        leaf.count = count
        return leaf

    def _decode_internal(
        self, page_id: int, level: int, count: int, body: bytes, extent: int = 1
    ) -> InternalNode:
        layout = self.layout
        dims = layout.dims
        capacity = layout.node_capacity_for(extent)
        if count > capacity:
            raise SerializationError(
                f"page {page_id}: node count {count} exceeds capacity"
            )
        node = InternalNode(
            page_id,
            dims,
            capacity,
            level,
            has_rects=layout.has_rects,
            has_spheres=layout.has_spheres,
            has_weights=layout.has_weights,
        )
        offset = 0

        def take(dtype, items: int) -> np.ndarray:
            nonlocal offset
            arr = np.frombuffer(body, dtype=dtype, count=items, offset=offset)
            offset += arr.nbytes
            return arr

        try:
            node.child_ids[:count] = take(np.uint32, count)
            if layout.has_weights:
                node.weights[:count] = take(np.uint32, count)
            if layout.has_rects:
                node.lows[:count] = take(np.float64, count * dims).reshape(count, dims)
                node.highs[:count] = take(np.float64, count * dims).reshape(count, dims)
            if layout.has_spheres:
                node.centers[:count] = take(np.float64, count * dims).reshape(count, dims)
                node.radii[:count] = take(np.float64, count)
        except ValueError as exc:
            raise SerializationError(f"page {page_id}: truncated node body") from exc
        node.count = count
        return node
