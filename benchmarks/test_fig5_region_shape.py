"""Figure 5: leaf-region volume and diameter of the SS-tree vs R*-tree.

Paper expectation (uniform data, D=16): the R*-tree's bounding
rectangles have *much smaller volume* (about 2% of the spheres') while
the SS-tree's bounding spheres have *much shorter diameter* (about 1.5
vs 2.5) — each shape wins one axis, which motivates the SR-tree.
"""

from conftest import archive, by_kind

from repro.analysis import measure_leaf_regions
from repro.bench.experiments import get_index, region_experiment, uniform_sizes


def test_fig5_region_shape(benchmark):
    sizes = uniform_sizes()
    headers, rows = region_experiment("uniform", sizes, ("rstar", "sstree"))
    archive("fig5_region_shape",
            "Figure 5: leaf-region volume/diameter, SS vs R* (uniform)",
            headers, rows)

    table = by_kind(rows, key_col=0)
    largest = sizes[-1]
    rstar = table["rstar"][largest]
    sstree = table["sstree"][largest]

    # Columns: size, index, region, sphere_vol, rect_vol, sphere_diam, rect_diam.
    rstar_volume = rstar[4]       # the shape the R*-tree actually uses
    ss_volume = sstree[3]
    rstar_diameter = rstar[6]
    ss_diameter = sstree[5]

    # Rect volumes are a tiny fraction of sphere volumes (paper: ~2 %).
    assert rstar_volume < 0.2 * ss_volume
    # Sphere diameters are clearly shorter than rect diagonals.
    assert ss_diameter < rstar_diameter

    index = get_index("sstree", "uniform", size=sizes[0], dims=16)
    benchmark(lambda: measure_leaf_regions(index))
