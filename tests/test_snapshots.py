"""Snapshot isolation: epoch pinning, copy-on-write retention, refresh.

Single-threaded tests of the versioned read layer — the committed-prefix
visibility contract, retention garbage collection, refresh precision,
and the facade/metrics surface.  The multi-threaded stress harness lives
in ``tests/test_concurrency.py``.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import REGISTRY, Database, Snapshot
from repro.exceptions import StorageError
from repro.indexes import open_index

DIMS = 5


def _points(n, seed=7):
    return np.random.default_rng(seed).normal(size=(n, DIMS))


def _knn_oracle(points, query, k):
    return np.sort(np.linalg.norm(points - query, axis=1))[:k]


def _assert_knn_matches(neighbors, points, query, k):
    got = [n.distance for n in neighbors]
    assert np.allclose(got, _knn_oracle(points, query, k))


@pytest.fixture
def wal_db(tmp_path):
    db = Database.create(str(tmp_path / "snap.db"), kind="srtree",
                         dims=DIMS, durability="wal")
    yield db
    if not db.closed:
        db.close()


# ----------------------------------------------------------------------
# committed-prefix visibility
# ----------------------------------------------------------------------

class TestVisibility:
    def test_snapshot_sees_exactly_the_committed_prefix(self, wal_db):
        pts = _points(60)
        for p in pts[:30]:
            wal_db.insert(p)
        snap = wal_db.snapshot()
        assert isinstance(snap, Snapshot)
        assert snap.size == 30
        for p in pts[30:]:
            wal_db.insert(p)
        # The snapshot is frozen at its epoch: same size, same answers.
        assert snap.size == 30
        q = pts[3]
        _assert_knn_matches(snap.knn(q, k=4), pts[:30], q, 4)
        # The live handle sees everything.
        _assert_knn_matches(wal_db.knn(q, k=4), pts, q, 4)
        snap.close()

    def test_refresh_advances_to_newest_commit(self, wal_db):
        pts = _points(50)
        for p in pts[:25]:
            wal_db.insert(p)
        with wal_db.snapshot() as snap:
            old_epoch = snap.epoch
            for p in pts[25:]:
                wal_db.insert(p)
            assert snap.age == 25
            new_epoch = snap.refresh()
            assert new_epoch > old_epoch
            assert snap.age == 0
            assert snap.size == 50
            q = pts[40]
            _assert_knn_matches(snap.knn(q, k=6), pts, q, 6)

    def test_snapshot_never_sees_an_open_transaction(self, wal_db):
        pts = _points(20)
        for p in pts:
            wal_db.insert(p)
        snap = wal_db.snapshot()
        store = wal_db.index.store
        # Open a WAL transaction by hand and mutate the metadata page;
        # the shadow table must stay invisible to the pinned epoch.
        before = snap.index.store.read_meta()
        store.begin_txn()
        try:
            doctored = dict(before)
            doctored["size"] = 999_999
            store.write_meta(doctored)
            assert snap.index.store.read_meta()["size"] == before["size"]
        finally:
            store.abort_txn()
        assert snap.size == 20
        snap.close()

    def test_deletes_are_isolated_too(self, wal_db):
        pts = _points(40)
        for p in pts:
            wal_db.insert(p)
        with wal_db.snapshot() as snap:
            for p in pts[:10]:
                wal_db.delete(p)
            assert wal_db.size == 30
            assert snap.size == 40
            q = pts[2]  # deleted from the live tree, alive in the snap
            _assert_knn_matches(snap.knn(q, k=3), pts, q, 3)
            snap.refresh()
            assert snap.size == 30
            _assert_knn_matches(snap.knn(q, k=3), pts[10:], q, 3)

    def test_two_snapshots_pin_independent_epochs(self, wal_db):
        pts = _points(45)
        for p in pts[:15]:
            wal_db.insert(p)
        snap_a = wal_db.snapshot()
        for p in pts[15:30]:
            wal_db.insert(p)
        snap_b = wal_db.snapshot()
        for p in pts[30:]:
            wal_db.insert(p)
        assert (snap_a.size, snap_b.size, wal_db.size) == (15, 30, 45)
        q = pts[0]
        _assert_knn_matches(snap_a.knn(q, k=5), pts[:15], q, 5)
        _assert_knn_matches(snap_b.knn(q, k=5), pts[:30], q, 5)
        snap_a.close()
        snap_b.close()


# ----------------------------------------------------------------------
# retention lifecycle
# ----------------------------------------------------------------------

class TestRetention:
    def test_versions_and_pins_collected_after_close(self, wal_db):
        pts = _points(40)
        for p in pts[:20]:
            wal_db.insert(p)
        store = wal_db.index.store
        snap = wal_db.snapshot()
        for p in pts[20:]:
            wal_db.insert(p)
        assert store.snapshot_pins == 1
        assert store._versions, "writes under a pin must retain images"
        snap.close()
        assert store.snapshot_pins == 0
        assert not store._versions, "releasing the last pin frees retention"

    def test_no_retention_without_pins(self, wal_db):
        for p in _points(30):
            wal_db.insert(p)
        assert not wal_db.index.store._versions

    def test_refresh_survives_change_log_eviction(self, wal_db):
        # Commit far more epochs than the change log keeps; refresh must
        # fall back to a full cache drop and still answer correctly.
        from repro.storage.store import CHANGE_LOG_EPOCHS

        pts = _points(CHANGE_LOG_EPOCHS + 40)
        wal_db.insert(pts[0])
        with wal_db.snapshot() as snap:
            old = snap.epoch
            for p in pts[1:]:
                wal_db.insert(p)
            store = wal_db.index.store
            assert store.changed_pages_between(old, store.epoch) is None
            snap.refresh()
            assert snap.size == len(pts)
            q = pts[-1]
            _assert_knn_matches(snap.knn(q, k=5), pts, q, 5)

    def test_cannot_pin_a_lapsed_epoch(self, wal_db):
        for p in _points(10):
            wal_db.insert(p)
        store = wal_db.index.store
        stale = store.epoch - 5
        with pytest.raises(StorageError):
            store.pin_snapshot(stale)


# ----------------------------------------------------------------------
# read-only enforcement
# ----------------------------------------------------------------------

class TestReadOnly:
    def test_every_mutation_raises(self, wal_db):
        for p in _points(12):
            wal_db.insert(p)
        with wal_db.snapshot() as snap:
            store = snap.index.store
            for call in (
                lambda: store.new_leaf(),
                lambda: store.new_internal(1),
                lambda: store.free(3),
                lambda: store.write_meta({}),
                lambda: store.begin_txn(),
                lambda: store.commit_txn(),
                lambda: store.flush(),
                lambda: store.checkpoint(),
            ):
                with pytest.raises(StorageError, match="read-only"):
                    call()

    def test_snapshot_of_a_snapshot_is_rejected(self, wal_db):
        for p in _points(12):
            wal_db.insert(p)
        with wal_db.snapshot() as snap:
            with pytest.raises(StorageError):
                snap.index.snapshot_view()

    def test_queries_after_close_raise(self, wal_db):
        pts = _points(12)
        for p in pts:
            wal_db.insert(p)
        snap = wal_db.snapshot()
        snap.close()
        assert snap.closed
        snap.close()  # idempotent
        with pytest.raises(StorageError):
            snap.knn(pts[0], k=1)


# ----------------------------------------------------------------------
# non-WAL stores publish at pin time
# ----------------------------------------------------------------------

class TestNonWal:
    def test_snapshot_reflects_unflushed_state(self, tmp_path):
        pts = _points(30)
        with Database.create(str(tmp_path / "plain.db"), kind="srtree",
                             dims=DIMS) as db:
            for p in pts[:18]:
                db.insert(p)
            with db.snapshot() as snap:  # flush + publish happen here
                assert snap.size == 18
                for p in pts[18:]:
                    db.insert(p)
                assert snap.size == 18
                q = pts[1]
                _assert_knn_matches(snap.knn(q, k=4), pts[:18], q, 4)
                snap.refresh()
                assert snap.size == 30

    def test_in_memory_database_snapshots(self):
        pts = _points(25)
        with Database.create(None, kind="sstree", dims=DIMS) as db:
            for p in pts:
                db.insert(p)
            with db.snapshot() as snap:
                q = pts[4]
                _assert_knn_matches(snap.knn(q, k=3), pts, q, 3)

    def test_publish_epoch_is_wal_only_manual(self, wal_db):
        with pytest.raises(StorageError):
            wal_db.index.store.publish_epoch()


# ----------------------------------------------------------------------
# facade, metrics, EXPLAIN
# ----------------------------------------------------------------------

class TestSurface:
    def test_stats_report_epoch_and_pins(self, wal_db):
        for p in _points(10):
            wal_db.insert(p)
        assert wal_db.stats()["epoch"] == 10
        with wal_db.snapshot():
            assert wal_db.stats()["snapshot_pins"] == 1
        assert wal_db.stats()["snapshot_pins"] == 0

    def test_snapshot_constructor_is_private(self, wal_db):
        with pytest.raises(TypeError, match="Database.snapshot"):
            Snapshot(wal_db.index)

    def test_explain_names_the_epoch(self, wal_db):
        pts = _points(40)
        for p in pts:
            wal_db.insert(p)
        with wal_db.snapshot() as snap:
            report = snap.explain(pts[0], k=3)
            assert report.startswith(f"EXPLAIN knn{{k=3, epoch={snap.epoch}}}")

    def test_epoch_and_refresh_metrics(self, wal_db):
        from repro.obs import hooks

        hooks.set_metrics_enabled(True)
        pts = _points(20)
        for p in pts[:10]:
            wal_db.insert(p)
        flat = REGISTRY.flatten()
        assert flat['repro_snapshot_epoch{index_kind="srtree"}'] == 10
        with wal_db.snapshot() as snap:
            for p in pts[10:]:
                wal_db.insert(p)
            before = REGISTRY.flatten()
            snap.refresh()
            after = REGISTRY.flatten()
        refreshes = 'repro_snapshot_refreshes_total{index_kind="srtree"}'
        assert after[refreshes] - before.get(refreshes, 0.0) == 1
        assert after['repro_snapshot_age_epochs{index_kind="srtree"}'] == 10


# ----------------------------------------------------------------------
# the deprecated open_index shim warns usefully (regression)
# ----------------------------------------------------------------------

def test_open_index_warning_points_at_the_caller(tmp_path):
    pts = _points(20)
    path = str(tmp_path / "legacy.db")
    with Database.create(path, kind="srtree", dims=DIMS) as db:
        for p in pts:
            db.insert(p)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        index = open_index(path)
    index.store.close()
    hits = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(hits) == 1
    warning = hits[0]
    # stacklevel=2 must attribute the warning to *this* file, not to the
    # shim's own frame inside repro.indexes.factory.
    assert warning.filename == __file__
    assert "repro.Database.open" in str(warning.message)
