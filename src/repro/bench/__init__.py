"""Benchmark harness: measurement runners and per-figure experiments.

* :mod:`~repro.bench.runner` — query batches and build-cost measurement
  with the paper's cold-buffer methodology;
* :mod:`~repro.bench.experiments` — one function per paper table/figure,
  with process-wide data-set/index memoization;
* :mod:`~repro.bench.throughput` — serving throughput (single vs
  batched vs parallel execution, ``repro bench-throughput``);
* :mod:`~repro.bench.report` — fixed-width table rendering and report
  archiving.
"""

from .report import format_table, format_value, write_report
from .runner import BuildCost, QueryCost, build_with_cost, run_query_batch
from .throughput import ThroughputResult, run_throughput, sample_queries

__all__ = [
    "BuildCost",
    "QueryCost",
    "ThroughputResult",
    "build_with_cost",
    "format_table",
    "format_value",
    "run_query_batch",
    "run_throughput",
    "sample_queries",
    "write_report",
]
