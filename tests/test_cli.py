"""Tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import main
from repro.indexes import open_index


@pytest.fixture
def data_file(tmp_path, rng):
    path = tmp_path / "points.npy"
    np.save(path, rng.random((200, 4)))
    return path


def run(*argv) -> int:
    return main([str(a) for a in argv])


class TestGenerate:
    @pytest.mark.parametrize("family", ["uniform", "cluster", "real"])
    def test_generates_npy(self, family, tmp_path, capsys):
        out = tmp_path / "data.npy"
        code = run("generate", "--family", family, "--size", 300,
                   "--dims", 8, "--out", out)
        assert code == 0
        data = np.load(out)
        assert data.shape == (300, 8) or family == "cluster"
        if family == "cluster":
            assert data.shape[1] == 8
        assert "wrote" in capsys.readouterr().out

    def test_deterministic_by_seed(self, tmp_path):
        a = tmp_path / "a.npy"
        b = tmp_path / "b.npy"
        run("generate", "--size", 50, "--dims", 3, "--seed", 7, "--out", a)
        run("generate", "--size", 50, "--dims", 3, "--seed", 7, "--out", b)
        np.testing.assert_array_equal(np.load(a), np.load(b))


class TestBuildInfoQuery:
    def test_full_pipeline(self, tmp_path, data_file, capsys):
        index_file = tmp_path / "index.srtree"
        assert run("build", "--kind", "srtree", "--data", data_file,
                   "--out", index_file) == 0
        assert index_file.exists()

        assert run("info", "--index", index_file) == 0
        out = capsys.readouterr().out
        assert "srtree: 200 points" in out
        assert "level 0" in out

        assert run("query", "--index", index_file, "--row", 5,
                   "--data", data_file, "-k", 3) == 0
        out = capsys.readouterr().out
        assert "3 neighbors" in out
        assert "page reads" in out
        assert out.splitlines()[0].startswith("0.000000")  # self-match first

    def test_query_by_point_string(self, tmp_path, data_file, capsys):
        index_file = tmp_path / "index.srtree"
        run("build", "--data", data_file, "--out", index_file)
        point = ",".join(str(x) for x in np.load(data_file)[0])
        assert run("query", "--index", index_file, "--point", point) == 0
        assert "page reads" in capsys.readouterr().out

    @pytest.mark.parametrize("kind", ["rstar", "sstree", "kdb", "vamsplit"])
    def test_other_kinds_build_and_open(self, kind, tmp_path, data_file):
        index_file = tmp_path / f"index.{kind}"
        assert run("build", "--kind", kind, "--data", data_file,
                   "--out", index_file) == 0
        index = open_index(index_file)
        assert index.size == 200
        index.store.close()

    def test_build_rejects_bad_shape(self, tmp_path, capsys):
        bad = tmp_path / "bad.npy"
        np.save(bad, np.zeros(7))
        code = run("build", "--data", bad, "--out", tmp_path / "x.idx")
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_query_row_requires_data(self, tmp_path, data_file, capsys):
        index_file = tmp_path / "index.srtree"
        run("build", "--data", data_file, "--out", index_file)
        assert run("query", "--index", index_file, "--row", 1) == 2
        assert "requires --data" in capsys.readouterr().err

    def test_missing_index_file(self, tmp_path, capsys):
        assert run("info", "--index", tmp_path / "absent.idx") == 2


class TestOpenIndex:
    def test_open_with_custom_page_size(self, tmp_path, rng):
        from repro.indexes import SRTree
        from repro.storage import FilePageFile

        path = tmp_path / "big.idx"
        tree = SRTree(4, page_size=16384,
                      pagefile=FilePageFile(path, page_size=16384))
        tree.load(rng.random((50, 4)))
        tree.close()
        reopened = open_index(path)
        assert reopened.layout.page_size == 16384
        assert reopened.size == 50
        reopened.store.close()


class TestQueryExplain:
    def test_explain_block_matches_page_reads(self, tmp_path, data_file,
                                              capsys):
        import re

        index_file = tmp_path / "index.srtree"
        run("build", "--data", data_file, "--out", index_file)
        capsys.readouterr()
        assert run("query", "--index", index_file, "--row", 3,
                   "--data", data_file, "-k", 5, "--explain") == 0
        out = capsys.readouterr().out
        assert "EXPLAIN knn{k=5}" in out
        assert "pruning efficiency" in out
        # the EXPLAIN physical-page total equals the IOStats read delta
        # printed on the summary line — the acceptance invariant.
        summary = re.search(r"-- 5 neighbors, (\d+) page reads", out)
        explained = re.search(r"pages read (\d+) physical", out)
        assert summary and explained
        assert summary.group(1) == explained.group(1)

    def test_explain_leaves_tracer_disabled(self, tmp_path, data_file):
        from repro.obs import trace

        index_file = tmp_path / "index.srtree"
        run("build", "--data", data_file, "--out", index_file)
        run("query", "--index", index_file, "--row", 0,
            "--data", data_file, "--explain")
        assert not trace.enabled
        assert trace.active is None


class TestStats:
    def test_prom_output_is_exposition_text(self, tmp_path, data_file,
                                            capsys):
        index_file = tmp_path / "index.srtree"
        run("build", "--data", data_file, "--out", index_file)
        capsys.readouterr()
        assert run("stats", "--index", index_file, "--queries", 3,
                   "-k", 3) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_queries_total counter" in out
        assert 'repro_queries_total{index_kind="srtree",op="knn"}' in out
        assert "# TYPE repro_query_seconds histogram" in out
        assert 'le="+Inf"' in out

    def test_json_format_parses(self, tmp_path, data_file, capsys):
        import json as _json

        index_file = tmp_path / "index.srtree"
        run("build", "--data", data_file, "--out", index_file)
        capsys.readouterr()
        assert run("stats", "--index", index_file, "--queries", 2,
                   "--format", "json") == 0
        dump = _json.loads(capsys.readouterr().out)
        assert dump["repro_queries_total"]["kind"] == "counter"
        assert dump["repro_page_reads_total"]["kind"] == "counter"

    def test_text_format_lists_flat_samples(self, capsys):
        # without --index the command just dumps the current registry
        assert run("stats", "--format", "text") == 0
        out = capsys.readouterr().out
        assert any(line.startswith("repro_") for line in out.splitlines())


@pytest.fixture
def obs_restore():
    """Restore global event-log/flight-recorder config the CLI mutates."""
    from repro.obs import EVENTS, FLIGHT

    prior = (FLIGHT.slow_query_ms, FLIGHT.trace_tail)
    yield
    EVENTS.configure(min_level="info")
    EVENTS.clear()
    FLIGHT.configure(slow_query_ms=prior[0], trace_tail=prior[1])
    FLIGHT.reset()


class TestTelemetryCommands:
    @pytest.fixture
    def index_file(self, tmp_path, data_file):
        path = tmp_path / "index.srtree"
        run("build", "--data", data_file, "--out", path)
        return path

    def test_serve_metrics_runs_for_duration(self, index_file, capsys,
                                             obs_restore):
        assert run("serve-metrics", "--index", index_file, "--port", 0,
                   "--queries", 3, "-k", 3, "--duration", 0.05) == 0
        out = capsys.readouterr().out
        assert "serving telemetry" in out
        assert "http://127.0.0.1:" in out

    def test_slow_table(self, index_file, capsys, obs_restore):
        assert run("slow", "--index", index_file, "--queries", 5,
                   "-k", 3, "--top", 3) == 0
        out = capsys.readouterr().out
        assert "wall ms" in out
        assert "recorded" in out and "p95" in out
        # header + <= 3 rows + summary
        rows = [line for line in out.splitlines()
                if line.strip() and not line.startswith(("--", "   qid"))]
        assert 1 <= len(rows) <= 4

    def test_slow_json_and_slow_ms_threshold(self, index_file, capsys,
                                             obs_restore):
        import json as _json

        assert run("slow", "--index", index_file, "--queries", 4,
                   "-k", 3, "--slow-ms", "0.000001",
                   "--format", "json") == 0
        records = _json.loads(capsys.readouterr().out)
        assert records
        assert all(rec["slow"] for rec in records)
        assert all(rec["op"] == "knn" for rec in records)

    def test_events_tail_prints_one_json_per_line(self, index_file, capsys,
                                                  obs_restore):
        import json as _json

        assert run("events", "--index", index_file, "--queries", 3,
                   "-k", 3, "--tail", 10, "--level", "debug") == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert 0 < len(lines) <= 10
        parsed = [_json.loads(line) for line in lines]
        assert any(e["event"] == "query_finish" for e in parsed)
        assert all({"ts", "level", "event"} <= set(e) for e in parsed)

    def test_events_level_filters(self, index_file, capsys, obs_restore):
        import json as _json

        assert run("events", "--index", index_file, "--queries", 3,
                   "-k", 3, "--level", "warn") == 0
        lines = capsys.readouterr().out.strip().splitlines()
        for line in lines:
            assert _json.loads(line)["level"] in ("warn", "error")
