# Convenience targets for development and reproduction runs.

.PHONY: install lint test bench examples all

# Byte-compile everything and run the dependency-free pyflakes-level
# checker (tools/lint.py upgrades itself to real pyflakes when
# installed).  CI runs this on every push/PR (.github/workflows/ci.yml).
lint:
	python -m compileall -q src tests benchmarks examples tools
	python tools/lint.py

# `pip install -e .` needs the `wheel` package for PEP 517 editable
# builds; offline environments fall back to the legacy setuptools path.
install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Approach the paper's original data-set sizes (slow).
bench-paper-scale:
	REPRO_BENCH_SCALE=10 pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/spatial_queries.py
	python examples/persistence.py
	python examples/cluster_analysis.py
	python examples/image_retrieval.py
	python examples/index_shootout.py

all: install lint test bench
