"""Unit tests for repro.storage.pagefile."""

import pytest

from repro.exceptions import PageNotFoundError, PageOverflowError
from repro.storage.constants import META_PAGE_ID
from repro.storage.pagefile import FilePageFile, InMemoryPageFile


@pytest.fixture(params=["memory", "file"])
def pagefile(request, tmp_path):
    if request.param == "memory":
        yield InMemoryPageFile(page_size=256)
    else:
        pf = FilePageFile(tmp_path / "pages.db", page_size=256)
        yield pf
        pf.close()


class TestAllocation:
    def test_never_hands_out_meta_page(self, pagefile):
        ids = [pagefile.allocate() for _ in range(10)]
        assert META_PAGE_ID not in ids
        assert len(set(ids)) == 10

    def test_free_recycles(self, pagefile):
        a = pagefile.allocate()
        pagefile.write(a, b"x")
        pagefile.free(a)
        b = pagefile.allocate()
        assert b == a

    def test_allocated_pages_counter(self, pagefile):
        assert pagefile.allocated_pages == 0
        a = pagefile.allocate()
        pagefile.allocate()
        assert pagefile.allocated_pages == 2
        pagefile.free(a)
        assert pagefile.allocated_pages == 1

    def test_ensure_allocated_removes_page_from_free_list(self, pagefile):
        """A WAL-replayed page is live: a later allocate() must never
        hand it out again and overwrite committed data."""
        a = pagefile.allocate()
        pagefile.write(a, b"live")
        pagefile.free(a)
        pagefile.ensure_allocated(a)  # replay marks the page live again
        b = pagefile.allocate()
        assert b != a

    def test_ensure_allocated_raises_watermark(self, pagefile):
        pagefile.ensure_allocated(40)
        pagefile.write(40, b"replayed")  # admitted for writing
        assert pagefile.allocate() > 40  # never re-issued


class TestReadWrite:
    def test_roundtrip(self, pagefile):
        pid = pagefile.allocate()
        pagefile.write(pid, b"hello world")
        data = pagefile.read(pid)
        assert data[:11] == b"hello world"

    def test_overwrite(self, pagefile):
        pid = pagefile.allocate()
        pagefile.write(pid, b"first")
        pagefile.write(pid, b"second")
        assert pagefile.read(pid)[:6] == b"second"

    def test_rejects_oversized(self, pagefile):
        pid = pagefile.allocate()
        with pytest.raises(PageOverflowError):
            pagefile.write(pid, b"x" * 257)

    def test_exact_page_size_ok(self, pagefile):
        pid = pagefile.allocate()
        pagefile.write(pid, b"y" * 256)
        assert pagefile.read(pid) == b"y" * 256

    def test_unknown_page_raises(self, pagefile):
        with pytest.raises(PageNotFoundError):
            pagefile.read(99)

    def test_meta_page_accessible(self, pagefile):
        pagefile.write(META_PAGE_ID, b"meta")
        assert pagefile.read(META_PAGE_ID)[:4] == b"meta"

    def test_many_pages_independent(self, pagefile):
        ids = [pagefile.allocate() for _ in range(20)]
        for i, pid in enumerate(ids):
            pagefile.write(pid, bytes([i]) * 16)
        for i, pid in enumerate(ids):
            assert pagefile.read(pid)[:16] == bytes([i]) * 16


class TestFileBacked:
    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "persist.db"
        pf = FilePageFile(path, page_size=128)
        pid = pf.allocate()
        pf.write(pid, b"durable")
        pf.sync()
        pf.close()

        reopened = FilePageFile(path, page_size=128, create=False)
        assert reopened.read(pid)[:7] == b"durable"
        reopened.close()

    def test_missing_file_without_create(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FilePageFile(tmp_path / "absent.db", create=False)

    def test_file_read_pads_to_page_size(self, tmp_path):
        pf = FilePageFile(tmp_path / "pad.db", page_size=128)
        pid = pf.allocate()
        pf.write(pid, b"short")
        assert len(pf.read(pid)) == 128
        pf.close()

    def test_context_manager(self, tmp_path):
        with FilePageFile(tmp_path / "ctx.db", page_size=128) as pf:
            pid = pf.allocate()
            pf.write(pid, b"ok")
        assert pf.closed

    def test_tiny_page_size_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            FilePageFile(tmp_path / "tiny.db", page_size=16)
