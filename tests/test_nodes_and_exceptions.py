"""Unit tests for the node object model, Entry, and the exception tree."""

import numpy as np
import pytest

from repro import exceptions as exc
from repro.indexes.base import Entry, Neighbor
from repro.storage.nodes import InternalNode, LeafNode


class TestLeafNode:
    @pytest.fixture
    def leaf(self):
        return LeafNode(page_id=5, dims=3, capacity=4)

    def test_add_and_views(self, leaf, rng):
        pts = rng.random((3, 3))
        for i, p in enumerate(pts):
            leaf.add(p, i)
        assert leaf.count == 3
        assert leaf.weight == 3
        np.testing.assert_array_equal(leaf.live_points, pts)

    def test_overflow_slot_then_reject(self, leaf, rng):
        for i in range(5):  # capacity 4 + the overflow slot
            leaf.add(rng.random(3), i)
        with pytest.raises(ValueError):
            leaf.add(rng.random(3), 99)

    def test_remove_at_swaps_last(self, leaf, rng):
        pts = rng.random((4, 3))
        for i, p in enumerate(pts):
            leaf.add(p, i)
        point, value = leaf.remove_at(1)
        np.testing.assert_array_equal(point, pts[1])
        assert value == 1
        assert leaf.count == 3
        assert set(leaf.values) == {0, 2, 3}

    def test_remove_at_bounds(self, leaf):
        with pytest.raises(IndexError):
            leaf.remove_at(0)

    def test_take_all_empties(self, leaf, rng):
        for i in range(3):
            leaf.add(rng.random(3), i)
        points, values = leaf.take_all()
        assert points.shape == (3, 3)
        assert values == [0, 1, 2]
        assert leaf.count == 0
        assert leaf.values == []

    def test_leaf_metadata(self, leaf):
        assert leaf.is_leaf
        assert leaf.level == 0
        assert leaf.extent == 1
        assert leaf.all_page_ids == [5]
        assert "LeafNode" in repr(leaf)


class TestInternalNode:
    @pytest.fixture
    def node(self):
        return InternalNode(9, dims=2, capacity=4, level=1,
                            has_rects=True, has_spheres=True, has_weights=True)

    def test_add_requires_all_shapes(self, node):
        with pytest.raises(ValueError, match="rectangle"):
            node.add(1, center=np.zeros(2), radius=1.0, weight=1)
        with pytest.raises(ValueError, match="sphere"):
            node.add(1, low=np.zeros(2), high=np.ones(2), weight=1)
        with pytest.raises(ValueError, match="weight"):
            node.add(1, low=np.zeros(2), high=np.ones(2),
                     center=np.zeros(2), radius=1.0)

    def test_find_child(self, node):
        node.add(42, low=np.zeros(2), high=np.ones(2), center=np.zeros(2),
                 radius=1.0, weight=3)
        assert node.find_child(42) == 0
        with pytest.raises(KeyError):
            node.find_child(77)

    def test_weight_sums_entries(self, node):
        for i, w in enumerate((3, 4, 5)):
            node.add(i, low=np.zeros(2), high=np.ones(2), center=np.zeros(2),
                     radius=1.0, weight=w)
        assert node.weight == 12

    def test_weight_requires_weights(self):
        bare = InternalNode(9, dims=2, capacity=4, level=1,
                            has_rects=True, has_spheres=False, has_weights=False)
        with pytest.raises(AttributeError):
            bare.weight

    def test_level_must_be_positive(self):
        with pytest.raises(ValueError):
            InternalNode(1, 2, 4, level=0, has_rects=True, has_spheres=False,
                         has_weights=False)

    def test_set_entry_bounds(self, node):
        with pytest.raises(IndexError):
            node.set_entry(0, weight=1)

    def test_remove_at_preserves_others(self, node):
        for i in range(3):
            node.add(i, low=np.full(2, float(i)), high=np.full(2, i + 1.0),
                     center=np.full(2, float(i)), radius=1.0, weight=i + 1)
        node.remove_at(0)
        assert node.count == 2
        assert set(node.child_ids[:2].tolist()) == {1, 2}

    def test_supernode_page_ids(self, node):
        node.extra_pages = [20, 21]
        assert node.extent == 3
        assert node.all_page_ids == [9, 20, 21]


class TestEntry:
    def test_for_point(self):
        p = np.array([1.0, 2.0])
        entry = Entry.for_point(p, "payload")
        assert entry.is_point
        assert entry.weight == 1
        assert entry.radius == 0.0
        np.testing.assert_array_equal(entry.low, p)
        np.testing.assert_array_equal(entry.high, p)
        assert entry.value == "payload"

    def test_subtree_entry(self):
        entry = Entry(child_id=7, center=np.zeros(2), radius=1.5, weight=40)
        assert not entry.is_point


class TestNeighbor:
    def test_unpacking_and_fields(self):
        n = Neighbor(0.5, np.array([1.0]), "v")
        d, p, v = n
        assert d == 0.5 and v == "v"
        assert n.distance == 0.5

    def test_frozen(self):
        n = Neighbor(0.5, np.array([1.0]), "v")
        with pytest.raises(AttributeError):
            n.distance = 1.0


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in ("DimensionalityError", "StorageError", "PageNotFoundError",
                     "PageOverflowError", "BufferPinError", "SerializationError",
                     "EmptyIndexError", "KeyNotFoundError",
                     "InvariantViolationError", "WorkloadError"):
            cls = getattr(exc, name)
            assert issubclass(cls, exc.ReproError), name

    def test_dual_inheritance_for_stdlib_compat(self):
        # Callers can catch these with stdlib exception types too.
        assert issubclass(exc.DimensionalityError, ValueError)
        assert issubclass(exc.PageNotFoundError, KeyError)
        assert issubclass(exc.KeyNotFoundError, KeyError)
        assert issubclass(exc.EmptyIndexError, LookupError)
        assert issubclass(exc.PageOverflowError, ValueError)

    def test_catch_all(self):
        from repro.indexes import SRTree

        tree = SRTree(2)
        with pytest.raises(exc.ReproError):
            tree.nearest([0.0, 0.0], 1)  # empty index
        with pytest.raises(exc.ReproError):
            tree.insert([0.0], None)  # wrong dims
