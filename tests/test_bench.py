"""Unit tests for the benchmark harness (runner, report, experiments)."""

import numpy as np
import pytest

from repro.bench.report import format_table, format_value, write_report
from repro.bench.runner import build_with_cost, run_query_batch
from repro.indexes import build_index


class TestRunner:
    def test_query_batch_averages(self, rng):
        data = rng.random((300, 4))
        index = build_index("srtree", data)
        cost = run_query_batch(index, data[:10], k=5)
        assert cost.queries == 10
        assert cost.k == 5
        assert cost.page_reads > 0
        assert cost.cpu_ms > 0
        assert cost.page_reads == pytest.approx(
            cost.node_reads + cost.leaf_reads, abs=1e-9
        )

    def test_cold_reads_exceed_warm(self, rng):
        data = rng.random((300, 4))
        index = build_index("srtree", data)
        queries = np.tile(data[0], (5, 1))
        cold = run_query_batch(index, queries, k=5, cold=True)
        warm = run_query_batch(index, queries, k=5, cold=False)
        assert warm.page_reads < cold.page_reads

    def test_rejects_empty_queries(self, rng):
        index = build_index("srtree", rng.random((20, 3)))
        with pytest.raises(ValueError):
            run_query_batch(index, np.empty((0, 3)))

    def test_build_with_cost(self, rng):
        data = rng.random((200, 4))
        index, cost = build_with_cost("sstree", data)
        assert index.size == 200
        assert cost.points == 200
        assert cost.cpu_ms > 0
        assert cost.disk_accesses == pytest.approx(
            cost.page_reads + cost.page_writes, abs=1e-9
        )
        # Stats were reset after the build measurement.
        assert index.stats.page_reads == 0


class TestThroughput:
    @pytest.fixture(scope="class")
    def saved(self, tmp_path_factory):
        from repro.storage import FilePageFile
        from repro.workloads import uniform_dataset

        data = uniform_dataset(400, 6, seed=7)
        path = tmp_path_factory.mktemp("throughput") / "tp.db"
        index = build_index("srtree", data, pagefile=FilePageFile(path))
        index.close()
        return path, data

    def test_parallel_percentiles_come_from_real_block_times(self, saved):
        from repro.bench.throughput import run_throughput

        path, data = saved
        doc = run_throughput(path, data[:64], k=5,
                             modes=("single", "parallel"),
                             block_size=8, workers=2)
        parallel = doc["modes"]["parallel"]
        assert parallel["p50_ms"] <= parallel["p95_ms"]
        # >= 8 independently timed blocks: bit-identical percentiles
        # would mean the samples were one flat wall/N average again.
        assert parallel["p50_ms"] != parallel["p95_ms"]
        assert parallel["qps"] > 0

    def test_pool_modes_carry_per_worker_breakdown(self, saved):
        from repro.bench.throughput import run_throughput

        path, data = saved
        doc = run_throughput(path, data[:32], k=5,
                             modes=("parallel",), block_size=8, workers=2)
        parallel = doc["modes"]["parallel"]
        assert len(parallel["per_worker"]) == 2
        total_reads = sum(w["page_reads"] for w in parallel["per_worker"])
        assert total_reads == pytest.approx(
            parallel["page_reads_per_query"] * 32, abs=1e-6
        )
        for entry in parallel["per_worker"]:
            assert {"worker", "page_reads", "buffer_hits",
                    "quarantines"} <= set(entry)

    def test_single_mode_has_no_per_worker(self, saved):
        from repro.bench.throughput import run_throughput

        path, data = saved
        doc = run_throughput(path, data[:16], k=3, modes=("single",))
        assert doc["modes"]["single"]["per_worker"] == []
        assert doc["modes"]["single"]["workers"] == 1


class TestBenchCheck:
    """The tools/bench_check.py schema gate."""

    @pytest.fixture
    def bench_check(self):
        import importlib.util
        import os

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        spec = importlib.util.spec_from_file_location(
            "bench_check", os.path.join(root, "tools", "bench_check.py")
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    @staticmethod
    def _mode(mode, **overrides):
        doc = {
            "mode": mode, "queries": 128, "k": 5, "wall_seconds": 1.0,
            "qps": 128.0, "p50_ms": 5.0, "p95_ms": 9.0,
            "page_reads_per_query": 3.0, "buffer_hit_ratio": 0.5,
            "page_cache_hit_ratio": 0.0, "workers": 1,
            "backend": "inline", "speedup_vs_single": 1.0,
        }
        doc.update(overrides)
        return doc

    def _doc(self, **mode_overrides):
        parallel = self._mode(
            "parallel", workers=2, backend="process",
            per_worker=[
                {"worker": 0, "page_reads": 10, "buffer_hits": 2,
                 "quarantines": 0},
                {"worker": 1, "page_reads": 12, "buffer_hits": 1,
                 "quarantines": 0},
            ],
        )
        parallel.update(mode_overrides)
        return {
            "benchmark": "throughput", "dataset": {"points": 100, "dims": 4},
            "k": 5, "queries": 128, "block_size": 16, "speedups": {},
            "cpu_count": 1,
            "modes": {"single": self._mode("single"), "parallel": parallel},
        }

    def test_well_formed_document_passes(self, bench_check):
        assert bench_check.check_schema(self._doc()) == []

    def test_flat_parallel_percentiles_rejected(self, bench_check):
        problems = bench_check.check_schema(
            self._doc(p50_ms=2.5, p95_ms=2.5)
        )
        assert any("per-block latencies were not measured" in p
                   for p in problems)

    def test_missing_per_worker_rejected(self, bench_check):
        problems = bench_check.check_schema(self._doc(per_worker=[]))
        assert any("per_worker" in p for p in problems)

    def test_inverted_percentiles_rejected(self, bench_check):
        problems = bench_check.check_schema(
            self._doc(p50_ms=9.0, p95_ms=5.0)
        )
        assert any("p50" in p and "p95" in p for p in problems)

    def test_parallel_slower_than_batched_rejected_on_multicore(
            self, bench_check):
        doc = self._doc(qps=50.0)
        doc["cpu_count"] = 4
        doc["modes"]["batched"] = self._mode("batched", qps=100.0,
                                             backend="inline")
        problems = bench_check.check_schema(doc)
        assert any("must scale" in p for p in problems)

    def test_scaling_gate_skipped_on_a_single_core(self, bench_check):
        # On the 1-core doc the comparison is meaningless: no pool can
        # beat one batched worker, so the slower parallel mode passes.
        doc = self._doc(qps=50.0)
        doc["modes"]["batched"] = self._mode("batched", qps=100.0,
                                             backend="inline")
        assert bench_check.check_schema(doc) == []

    def test_committed_document_passes_schema(self, bench_check):
        import json
        import os

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        with open(os.path.join(root, "BENCH_throughput.json")) as fh:
            doc = json.load(fh)
        assert bench_check.check_schema(doc) == []


class TestReport:
    def test_format_value_floats(self):
        assert format_value(0.0) == "0"
        assert format_value(3.14159) == "3.142"
        assert format_value(123.456) == "123.5"
        assert format_value(1.5e-9) == "1.500e-09"
        assert format_value(2.5e7) == "2.500e+07"

    def test_format_value_passthrough(self):
        assert format_value("srtree") == "srtree"
        assert format_value(42) == "42"
        assert format_value(True) == "True"

    def test_format_table_alignment(self):
        text = format_table(["name", "reads"], [["srtree", 12.5], ["sstree", 100.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert all(len(line) <= len(lines[1]) + 2 for line in lines)

    def test_format_table_row_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_write_report(self, tmp_path):
        path = tmp_path / "nested" / "out.txt"
        text = write_report(path, "Title", "body")
        assert path.read_text() == text
        assert text.startswith("Title\n=====")


class TestExperiments:
    def test_fanout_experiment_matches_paper(self):
        from repro.bench.experiments import fanout_experiment

        headers, rows = fanout_experiment(dims_list=[16])
        table = {row[0]: row for row in rows}
        assert table["srtree"][1] == 20  # node capacity, D=16
        assert table["srtree"][2] == 12  # leaf capacity
        assert table["sstree"][1] == 56
        assert table["rstar"][1] == 31

    def test_dataset_cache_returns_same_object(self):
        from repro.bench.experiments import clear_caches, get_dataset

        clear_caches()
        a = get_dataset("uniform", size=100, dims=4)
        b = get_dataset("uniform", size=100, dims=4)
        assert a is b
        clear_caches()

    def test_index_cache(self):
        from repro.bench.experiments import clear_caches, get_index

        clear_caches()
        a = get_index("srtree", "uniform", size=120, dims=4)
        b = get_index("srtree", "uniform", size=120, dims=4)
        assert a is b
        assert a.size == 120
        clear_caches()

    def test_scale_env(self, monkeypatch):
        from repro.bench import experiments

        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.0")
        assert experiments.scale() == 2.0
        assert experiments.scaled(1000) == 2000
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        assert experiments.scaled(1000) == 1000

    def test_height_experiment_small(self):
        from repro.bench.experiments import clear_caches, height_experiment

        clear_caches()
        headers, rows = height_experiment(
            "uniform", sizes=[150], dims=4, kinds=("srtree", "sstree")
        )
        assert headers == ["index", "n=150"]
        assert all(row[1] >= 2 for row in rows)
        clear_caches()
