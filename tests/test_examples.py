"""Smoke tests: the example programs must run end to end.

Only the fast examples run here (the shootout and retrieval demos build
many indexes and belong to manual runs); each executes in a subprocess
exactly as a user would run it.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

FAST_EXAMPLES = ["quickstart.py", "persistence.py", "spatial_queries.py"]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate what they do"


def test_quickstart_output_mentions_key_steps():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    out = result.stdout
    assert "leaf capacity 12" in out
    assert "node fanout 20" in out
    assert "page reads" in out
    assert "invariants OK" in out
