"""Setup shim for legacy editable installs (offline environments).

All project metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` works on environments whose setuptools predates
PEP 660 editable wheels (or that lack the ``wheel`` package).
"""

from setuptools import setup

setup()
