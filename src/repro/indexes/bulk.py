"""Bottom-up bulk loading for the dynamic tree families.

An extension beyond the paper: the paper's static baseline (the
VAMSplit R-tree) shows how much a fully-informed build helps; this
module brings the same variance/approximate-median packing to the
R*-, SS-, and SR-trees.  Points are packed into full leaves by
recursive VAM splits, then each level of parent nodes is packed the
same way over the child-entry centroids, with the *family's own region
rules* (MBRs, centroid spheres, or both with the SR-tree's tightened
radius) computing the entries.

The result is a valid tree of the target family — every invariant
checker and query path works unchanged — built in O(n log n) with
near-100 % page utilization, after which it remains fully dynamic.
"""

from __future__ import annotations

import numpy as np

from .base import SpatialIndex

__all__ = ["bulk_load", "vam_groups"]


def vam_groups(coords: np.ndarray, capacity: int,
               minimum: int = 1) -> list[np.ndarray]:
    """Partition row indices into groups of ``minimum..capacity`` rows.

    Recursive VAM (variance, approximate median) splits: cut along the
    highest-variance dimension at a multiple of ``capacity`` nearest the
    median, so all groups except possibly the last per branch are full.
    ``minimum`` (at most half of ``capacity + 1``, as with the trees'
    40 % fill bound) prevents underfull trailing groups, so the result
    can seed nodes that satisfy the R-tree minimum-utilization
    invariant.  Returns index arrays in coordinate-sorted order.
    """
    if capacity < 1:
        raise ValueError(f"capacity must be positive, got {capacity}")
    if not 1 <= minimum <= (capacity + 1) // 2:
        raise ValueError(
            f"minimum must be in [1, {(capacity + 1) // 2}], got {minimum}"
        )
    indices = np.arange(coords.shape[0])

    def split(idx: np.ndarray) -> list[np.ndarray]:
        n = idx.shape[0]
        if n <= capacity:
            return [idx]
        block = coords[idx]
        dim = int(np.argmax(np.var(block, axis=0)))
        order = np.argsort(block[:, dim], kind="stable")
        ordered = idx[order]
        left_blocks = max(1, round(n / 2 / capacity))
        cut = min(left_blocks * capacity, n - 1)
        # Keep both sides above the minimum fill.
        if n - cut < minimum:
            cut = n - minimum
        cut = max(cut, minimum)
        return split(ordered[:cut]) + split(ordered[cut:])

    return split(indices)


def bulk_load(tree: SpatialIndex, points, values=None) -> None:
    """Bulk-load an *empty* dynamic tree with a complete data set.

    Parameters
    ----------
    tree:
        An empty :class:`~repro.indexes.rstar.RStarTree`,
        :class:`~repro.indexes.sstree.SSTree`, or
        :class:`~repro.indexes.srtree.SRTree`.
    points, values:
        The data set; values default to row indices.

    After loading, the tree is indistinguishable from (and as dynamic
    as) an incrementally built one, but with tightly packed pages.
    """
    from .dynamic import DynamicTree

    if not isinstance(tree, DynamicTree):
        raise TypeError(
            f"bulk_load supports the dynamic tree families, not {type(tree).NAME}"
        )
    if tree.size != 0:
        raise ValueError("bulk_load requires an empty tree")
    points = np.ascontiguousarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != tree.dims:
        raise ValueError(f"expected an (N, {tree.dims}) array of points")
    n = points.shape[0]
    if n == 0:
        return
    if values is None:
        values = list(range(n))
    else:
        values = list(values)
        if len(values) != n:
            raise ValueError("points and values lengths differ")

    store = tree.store
    # The empty root leaf from the constructor becomes garbage.
    store.free(tree.root_id)

    # --- leaf level -------------------------------------------------------
    level_nodes = []
    for group in vam_groups(points, tree.leaf_capacity, tree.leaf_min_fill):
        leaf = store.new_leaf()
        for i in group:
            leaf.add(points[i], values[i])
        store.write(leaf)
        level_nodes.append(leaf)

    # --- internal levels --------------------------------------------------
    level = 1
    while len(level_nodes) > 1:
        entries = [(node.page_id, tree._entry_fields(node)) for node in level_nodes]
        centers = np.array([
            fields["center"] if fields.get("center") is not None
            else 0.5 * (fields["low"] + fields["high"])
            for _, fields in entries
        ])
        parents = []
        for group in vam_groups(centers, tree.node_capacity, tree.node_min_fill):
            parent = store.new_internal(level)
            for i in group:
                child_id, fields = entries[i]
                parent.add(child_id, **fields)
            store.write(parent)
            parents.append(parent)
        level_nodes = parents
        level += 1

    tree._root_id = level_nodes[0].page_id
    tree._height = level_nodes[0].level + 1
    tree._size = n
