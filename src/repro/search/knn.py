"""Depth-first branch-and-bound k-nearest-neighbor search.

This is the algorithm of Roussopoulos, Kelley and Vincent ("Nearest
Neighbor Queries", SIGMOD 1995), which the paper uses for every index
structure (Section 4.4):

1. traverse the tree depth-first, visiting children in order of their
   MINDIST from the query point (the *active branch list*);
2. maintain the ``k`` best candidates found so far in a max-heap;
3. prune any subtree whose MINDIST exceeds the current ``k``-th best
   distance.

The only index-specific ingredient is the MINDIST from a point to a
child region, supplied by ``index.child_mindists`` — rectangles for the
R*-tree family, spheres for the SS-tree, and the combined
``max(sphere, rect)`` bound for the SR-tree.

Distance computations are tallied into the index's
:class:`~repro.storage.stats.IOStats` as a machine-independent CPU-cost
proxy; physical page reads are counted by the node store itself.
"""

from __future__ import annotations

import heapq
from itertools import count

import numpy as np

from ..indexes.base import Neighbor
from ..obs.tracer import trace

__all__ = ["knn_search", "knn_search_best_first", "KnnCandidates"]


class KnnCandidates:
    """A bounded max-heap of the best ``k`` candidates seen so far."""

    def __init__(self, k: int) -> None:
        self.k = k
        # Heap items are (-distance, tiebreak, point, value): heapq is a
        # min-heap, so the worst candidate sits at index 0.
        self._heap: list[tuple[float, int, np.ndarray, object]] = []
        self._tiebreak = count()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def bound(self) -> float:
        """Current pruning distance: the k-th best, or +inf while filling."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    def offer(self, distance: float, point: np.ndarray, value: object) -> None:
        """Consider one candidate."""
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-distance, next(self._tiebreak), point, value))
        elif distance < -self._heap[0][0]:
            heapq.heapreplace(self._heap, (-distance, next(self._tiebreak), point, value))

    def offer_batch(self, distances: np.ndarray, points: np.ndarray, values) -> None:
        """Consider a leaf's worth of candidates at once."""
        bound = self.bound
        for i in np.argsort(distances, kind="stable"):
            d = float(distances[i])
            if d >= bound and len(self._heap) >= self.k:
                break
            self.offer(d, points[i].copy(), values[i])
            bound = self.bound

    def results(self) -> list[Neighbor]:
        """The candidates as :class:`Neighbor` objects, closest first."""
        ordered = sorted(self._heap, key=lambda item: (-item[0], item[1]))
        return [Neighbor(-d, point, value) for d, _, point, value in ordered]


def knn_search(index, point: np.ndarray, k: int) -> list[Neighbor]:
    """Find the ``k`` nearest points to ``point`` in ``index``.

    Returns at most ``k`` :class:`Neighbor` results sorted by ascending
    distance (fewer when the index holds fewer than ``k`` points).
    """
    candidates = KnnCandidates(k)
    stats = index.stats
    span = trace.active
    if span is not None:
        span.visit(index.root_id, index.height - 1, 0.0)
    _visit(index, index.root_id, point, candidates, stats, span)
    return candidates.results()


def knn_search_best_first(index, point: np.ndarray, k: int) -> list[Neighbor]:
    """Best-first k-NN (Hjaltason & Samet's incremental algorithm).

    An extension beyond the paper: instead of the depth-first traversal
    of Roussopoulos et al. (which the paper uses, and which
    :func:`knn_search` implements), maintain one global priority queue
    of subtrees ordered by MINDIST and always expand the closest.  This
    is *I/O-optimal* for a given tree — it reads exactly the pages whose
    region MINDIST is below the k-th-neighbor distance — so it lower
    bounds the reads of any correct traversal and makes a good ablation
    reference (``benchmarks/test_ablation_search_algorithm.py``).

    Returns the same results as :func:`knn_search`.
    """
    candidates = KnnCandidates(k)
    stats = index.stats
    tiebreak = count()
    span = trace.active
    # Page-id -> level side table, kept only while tracing, so queue
    # leftovers can be attributed to their tree level at prune time.
    levels: dict[int, int] | None = (
        {index.root_id: index.height - 1} if span is not None else None
    )
    # Queue items: (mindist, tiebreak, page_id).
    queue: list[tuple[float, int, int]] = [(0.0, next(tiebreak), index.root_id)]
    while queue:
        dist, _, page_id = heapq.heappop(queue)
        if dist > candidates.bound:
            # Every remaining subtree is farther than the k-th best.
            if span is not None:
                span.prune(page_id, levels.get(page_id, -1), dist,
                           candidates.bound)
                for leftover_dist, _, leftover_id in queue:
                    span.prune(leftover_id, levels.get(leftover_id, -1),
                               leftover_dist, candidates.bound)
            break
        node = index.read_node(page_id)
        if span is not None:
            span.visit(page_id, node.level, dist, candidates.bound)
            span.queue(len(queue), popped=1)
        if node.is_leaf:
            if node.count == 0:
                continue
            pts = node.points[: node.count]
            diff = pts - point
            dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            stats.distance_computations += node.count
            candidates.offer_batch(dists, pts, node.values)
            continue
        child_dists = index.child_mindists(node, point)
        stats.distance_computations += node.count
        bound = candidates.bound
        for i in range(node.count):
            if child_dists[i] <= bound:
                child_id = int(node.child_ids[i])
                heapq.heappush(
                    queue,
                    (float(child_dists[i]), next(tiebreak), child_id),
                )
                if span is not None:
                    levels[child_id] = node.level - 1
                    span.queue(len(queue), pushed=1)
            elif span is not None:
                span.prune(int(node.child_ids[i]), node.level - 1,
                           float(child_dists[i]), bound)
    return candidates.results()


def _visit(index, page_id: int, point: np.ndarray, candidates: KnnCandidates,
           stats, span=None) -> None:
    node = index.read_node(page_id)
    if node.is_leaf:
        if node.count == 0:
            return
        pts = node.points[: node.count]
        diff = pts - point
        dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        stats.distance_computations += node.count
        candidates.offer_batch(dists, pts, node.values)
        return

    dists = index.child_mindists(node, point)
    stats.distance_computations += node.count
    order = np.argsort(dists, kind="stable")
    for pos, i in enumerate(order):
        # Children are visited in MINDIST order, so once one exceeds the
        # current bound every later one does too.
        if dists[i] > candidates.bound:
            if span is not None:
                bound = candidates.bound
                for j in order[pos:]:
                    span.prune(int(node.child_ids[j]), node.level - 1,
                               float(dists[j]), bound)
            break
        if span is not None:
            span.visit(int(node.child_ids[i]), node.level - 1, float(dists[i]),
                       candidates.bound)
        _visit(index, int(node.child_ids[i]), point, candidates, stats, span)
