"""Property-based tests for the query extensions and bulk loading.

Complements ``test_properties.py`` with invariants over the newer
surface: window queries, incremental iteration, best-first search, and
bulk-loaded trees — all checked against brute force on arbitrary
point clouds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.indexes import SRTree, SRXTree

finite = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False,
                   allow_infinity=False)


def points_strategy(min_rows=2, max_rows=60, dims=4):
    return arrays(np.float64, st.tuples(st.integers(min_rows, max_rows),
                                        st.just(dims)),
                  elements=finite)


@given(points=points_strategy(),
       corner_a=arrays(np.float64, (4,), elements=finite),
       corner_b=arrays(np.float64, (4,), elements=finite))
@settings(max_examples=40, deadline=None)
def test_window_matches_brute_force(points, corner_a, corner_b):
    low = np.minimum(corner_a, corner_b)
    high = np.maximum(corner_a, corner_b)
    tree = SRTree(4)
    tree.load(points)
    got = sorted(n.value for n in tree.window(low, high))
    inside = np.all(points >= low, axis=1) & np.all(points <= high, axis=1)
    expected = sorted(int(i) for i in np.nonzero(inside)[0])
    assert got == expected


@given(points=points_strategy(),
       query=arrays(np.float64, (4,), elements=finite))
@settings(max_examples=40, deadline=None)
def test_incremental_iteration_is_sorted_and_complete(points, query):
    tree = SRTree(4)
    tree.load(points)
    stream = list(tree.iter_nearest(query))
    assert len(stream) == len(points)
    dists = [n.distance for n in stream]
    assert dists == sorted(dists)
    expected = np.sort(np.linalg.norm(points - query, axis=1))
    np.testing.assert_allclose(dists, expected, atol=1e-9)


@given(points=points_strategy(),
       query=arrays(np.float64, (4,), elements=finite),
       bound=st.floats(0.0, 60.0, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_incremental_bound_equals_range_query(points, query, bound):
    tree = SRTree(4)
    tree.load(points)
    streamed = list(tree.iter_nearest(query, max_distance=bound))
    ranged = tree.within(query, bound)
    assert len(streamed) == len(ranged)
    np.testing.assert_allclose(
        [n.distance for n in streamed], [n.distance for n in ranged], atol=1e-9
    )


@given(points=points_strategy(),
       query=arrays(np.float64, (4,), elements=finite),
       k=st.integers(1, 12))
@settings(max_examples=40, deadline=None)
def test_best_first_equals_depth_first(points, query, k):
    tree = SRTree(4)
    tree.load(points)
    dfs = [(round(n.distance, 9)) for n in tree.nearest(query, k)]
    bfs = [(round(n.distance, 9)) for n in tree.nearest(query, k,
                                                        algorithm="best-first")]
    assert dfs == bfs


@given(points=points_strategy(min_rows=2, max_rows=120),
       query=arrays(np.float64, (4,), elements=finite),
       k=st.integers(1, 8))
@settings(max_examples=25, deadline=None)
def test_bulk_loaded_tree_exact(points, query, k):
    tree = SRTree(4)
    tree.bulk_load(points)
    tree.check_invariants()
    expected = np.sort(np.linalg.norm(points - query, axis=1))[: min(k, len(points))]
    got = [n.distance for n in tree.nearest(query, k)]
    np.testing.assert_allclose(got, expected, atol=1e-9)


@given(points=points_strategy(min_rows=2, max_rows=120),
       query=arrays(np.float64, (4,), elements=finite),
       k=st.integers(1, 8))
@settings(max_examples=20, deadline=None)
def test_srx_tree_exact(points, query, k):
    tree = SRXTree(4, max_overlap=0.05)
    tree.load(points)
    tree.check_invariants()
    expected = np.sort(np.linalg.norm(points - query, axis=1))[: min(k, len(points))]
    got = [n.distance for n in tree.nearest(query, k)]
    np.testing.assert_allclose(got, expected, atol=1e-9)


@given(points=points_strategy(min_rows=1, max_rows=60))
@settings(max_examples=40, deadline=None)
def test_lookup_finds_every_stored_point(points):
    tree = SRTree(4)
    tree.load(points)
    index = int(len(points) // 2)
    assert index in tree.lookup(points[index])


@pytest.mark.parametrize("seed", range(3))
def test_vam_groups_property(seed):
    # Deterministic fuzz of the bulk-load partitioner across shapes.
    from repro.indexes.bulk import vam_groups

    rng = np.random.default_rng(seed)
    for _ in range(10):
        n = int(rng.integers(1, 400))
        dims = int(rng.integers(1, 10))
        capacity = int(rng.integers(2, 40))
        minimum = int(rng.integers(1, (capacity + 1) // 2 + 1))
        coords = rng.random((n, dims))
        groups = vam_groups(coords, capacity, minimum)
        flat = sorted(int(i) for g in groups for i in g)
        assert flat == list(range(n))
        assert all(len(g) <= capacity for g in groups)
        if n >= minimum:
            assert all(len(g) >= min(minimum, n) for g in groups)
