"""Parallel serving over a read-only on-disk index.

A saved index is immutable on disk, so it can be served by several
workers at once without coordination: each worker re-opens the page
file and gets a **private** buffer pool, page cache, and
:class:`~repro.storage.stats.IOStats` bundle.  Workers are plain
threads — the hot code is numpy kernels and file reads, both of which
release the GIL, and thread workers keep the API free of pickling
constraints on payload values.

::

    with ServingPool("tree.db", workers=4) as pool:
        answers = pool.knn(queries, k=21)        # batched per worker
    print(pool.stats().page_reads)

Queries are sharded contiguously across workers; each worker runs the
batched engine (:func:`repro.exec.batch.batch_knn`) over its shard, or
the single-query search when ``batched=False`` (the baseline mode the
throughput benchmark compares against).

**Observability caveat.**  The query tracer (:mod:`repro.obs.tracer`)
is deliberately single-threaded; do not enable tracing around pool
calls.  Metric counters are process-global and remain *cumulatively*
correct, but per-operation histograms interleave across workers.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..geometry import as_points
from ..indexes.base import Neighbor
from ..storage.stats import IOStats

__all__ = ["ServingPool"]


class ServingPool:
    """A fixed pool of worker threads, each owning a private index handle.

    Parameters
    ----------
    path:
        Page file written by ``index.save()`` / ``repro build``.
    workers:
        Worker count; defaults to ``min(4, cpu_count)``.
    buffer_capacity:
        Per-worker buffer pool frames (``None`` = store default).
    page_cache_capacity:
        Per-worker raw-image page cache, in pages (0 = off).
    """

    def __init__(
        self,
        path,
        *,
        workers: int | None = None,
        buffer_capacity: int | None = None,
        page_cache_capacity: int = 0,
    ) -> None:
        from ..indexes.factory import open_index

        if workers is None:
            workers = min(4, os.cpu_count() or 1)
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self._indexes = [
            open_index(path, buffer_capacity, page_cache_capacity)
            for _ in range(workers)
        ]
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._closed = False

    # ------------------------------------------------------------------

    @property
    def workers(self) -> int:
        """Number of worker threads (== private index handles)."""
        return len(self._indexes)

    @property
    def dims(self) -> int:
        """Dimensionality of the served index."""
        return self._indexes[0].dims

    def knn(self, queries, k: int = 1, *, batched: bool = True,
            block_size: int | None = None) -> list[list[Neighbor]]:
        """The ``k`` nearest neighbors of every query, in input order.

        ``batched=True`` (default) runs the block engine per shard;
        ``batched=False`` loops ``index.nearest`` per query — same
        results, used as the throughput baseline.
        """
        from .batch import DEFAULT_BLOCK_SIZE, batch_knn

        queries = as_points(queries, self.dims)
        if block_size is None:
            block_size = DEFAULT_BLOCK_SIZE

        def run(worker: int, shard: np.ndarray) -> list[list[Neighbor]]:
            index = self._indexes[worker]
            if batched:
                return batch_knn(index, shard, k, block_size=block_size)
            return [index.nearest(point, k=k) for point in shard]

        return self._scatter(queries, run)

    def range(self, queries, radius: float) -> list[list[Neighbor]]:
        """All stored points within ``radius`` of every query, in input order."""
        from .batch import batch_range

        queries = as_points(queries, self.dims)

        def run(worker: int, shard: np.ndarray) -> list[list[Neighbor]]:
            return batch_range(self._indexes[worker], shard, radius)

        return self._scatter(queries, run)

    def _scatter(self, queries: np.ndarray, run) -> list[list[Neighbor]]:
        if self._closed:
            raise RuntimeError("serving pool is closed")
        n = queries.shape[0]
        shards = np.array_split(np.arange(n), len(self._indexes))
        futures = []
        for worker, shard in enumerate(shards):
            if shard.size == 0:
                continue
            futures.append(
                (shard, self._executor.submit(run, worker, queries[shard]))
            )
        results: list[list[Neighbor] | None] = [None] * n
        for shard, future in futures:
            out = future.result()
            for pos, qi in enumerate(shard):
                results[qi] = out[pos]
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------

    def stats(self) -> IOStats:
        """Aggregate I/O counters summed over every worker."""
        total = IOStats()
        for index in self._indexes:
            total = total + index.stats
        return total

    def drop_caches(self) -> None:
        """Cold-start every worker (empties buffer pools and page caches)."""
        for index in self._indexes:
            index.store.drop_cache()

    def close(self) -> None:
        """Shut the executor down and close every page file handle.

        The index is read-only here, so nothing is written back — the
        store just releases its (clean) buffers and file descriptors.
        """
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)
        for index in self._indexes:
            index.store.close()

    def __enter__(self) -> "ServingPool":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False
