"""Figure 11: SR-tree query performance on the real (histogram) data set.

Paper expectation: on real feature vectors the SR-tree cuts CPU time to
~67 % and disk reads to ~68 % of the SS-tree, and even slightly
outperforms the static VAMSplit R-tree.
"""

from conftest import archive, by_kind

from repro.bench.experiments import (
    get_dataset,
    get_index,
    query_experiment,
    real_sizes,
)
from repro.bench.runner import run_query_batch
from repro.workloads import sample_queries

KINDS = ("rstar", "sstree", "srtree", "vamsplit")


def test_fig11_sr_real(benchmark):
    sizes = real_sizes()
    headers, rows = query_experiment("real", sizes, KINDS)
    archive("fig11_sr_real",
            "Figure 11: SR-tree vs baselines on real data (k=21)",
            headers, rows)

    table = by_kind(rows, key_col=0)
    largest = sizes[-1]
    reads = {kind: table[kind][largest][3] for kind in KINDS}

    # The headline result: a clear win over the SS-tree on real data.
    assert reads["srtree"] < 0.85 * reads["sstree"]
    assert reads["srtree"] < reads["rstar"]
    # Competitive with the optimized static baseline (paper: slightly
    # better; allow parity with slack).
    assert reads["srtree"] <= reads["vamsplit"] * 1.25

    data = get_dataset("real", size=sizes[0], dims=16)
    index = get_index("srtree", "real", size=sizes[0], dims=16)
    queries = sample_queries(data, 5, seed=99)
    benchmark.pedantic(
        lambda: run_query_batch(index, queries, k=21), rounds=3, iterations=1
    )
