"""Range (ball) queries: every point within a radius of the query.

The traversal prunes a subtree as soon as its region MINDIST exceeds
the query radius, using the same per-family MINDIST as the k-NN search.

Like the k-NN algorithms, ``range_search`` reads ``trace.active`` once
per query and dispatches to an untraced fast path (no span branches in
the per-node loop) or a traced twin that records visit/prune events.
"""

from __future__ import annotations

import numpy as np

from ..indexes.base import Neighbor
from ..obs.tracer import trace

__all__ = ["range_search"]


def range_search(index, point: np.ndarray, radius: float) -> list[Neighbor]:
    """All stored points with Euclidean distance <= ``radius``, closest first."""
    results: list[Neighbor] = []
    span = trace.active
    if span is None:
        _visit(index, index.root_id, point, radius, results)
    else:
        span.visit(index.root_id, index.height - 1, 0.0, radius)
        _visit_traced(index, index.root_id, point, radius, results, span)
    results.sort(key=lambda n: n.distance)
    return results


def _scan_leaf(node, point: np.ndarray, radius: float,
               results: list[Neighbor], stats) -> None:
    if node.count == 0:
        return
    pts = node.points[: node.count]
    diff = pts - point
    dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    stats.distance_computations += node.count
    for i in np.nonzero(dists <= radius)[0]:
        results.append(Neighbor(float(dists[i]), pts[i].copy(), node.values[i]))


def _visit(index, page_id: int, point: np.ndarray, radius: float,
           results: list[Neighbor]) -> None:
    """Untraced fast path: zero tracing branches in the hot loop."""
    node = index.read_node(page_id)
    stats = index.stats
    if node.is_leaf:
        _scan_leaf(node, point, radius, results, stats)
        return
    dists = index.child_mindists(node, point)
    stats.distance_computations += node.count
    child_ids = node.child_ids
    for i in np.nonzero(dists <= radius)[0]:
        _visit(index, int(child_ids[i]), point, radius, results)


def _visit_traced(index, page_id: int, point: np.ndarray, radius: float,
                  results: list[Neighbor], span) -> None:
    """Traced twin of :func:`_visit`: records visit/prune events."""
    node = index.read_node(page_id)
    stats = index.stats
    if node.is_leaf:
        _scan_leaf(node, point, radius, results, stats)
        return
    dists = index.child_mindists(node, point)
    stats.distance_computations += node.count
    for i in range(node.count):
        mindist = float(dists[i])
        child_id = int(node.child_ids[i])
        if mindist <= radius:
            span.visit(child_id, node.level - 1, mindist, radius)
            _visit_traced(index, child_id, point, radius, results, span)
        else:
            span.prune(child_id, node.level - 1, mindist, radius)
