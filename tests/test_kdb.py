"""Unit tests for K-D-B-tree specifics: disjoint partitioning, forced splits."""

import numpy as np
import pytest

from repro.exceptions import IndexError_, KeyNotFoundError
from repro.indexes.kdb import KDBTree, _choose_point_plane, _choose_region_plane

from tests.helpers import brute_force_knn


class TestPointPlane:
    def test_picks_spreadiest_dimension(self, rng):
        pts = np.zeros((10, 3))
        pts[:, 2] = np.arange(10, dtype=float)
        pts[:, 0] = rng.random(10) * 0.01
        dim, plane = _choose_point_plane(pts)
        assert dim == 2
        assert 0.0 < plane <= 9.0
        left = np.sum(pts[:, 2] < plane)
        assert 0 < left < 10

    def test_handles_heavy_duplicates(self):
        pts = np.array([[0.0], [0.0], [0.0], [0.0], [1.0]])
        dim, plane = _choose_point_plane(pts)
        assert dim == 0
        assert np.sum(pts[:, 0] < plane) == 4

    def test_all_identical_raises(self):
        with pytest.raises(IndexError_):
            _choose_point_plane(np.ones((5, 2)))


class TestRegionPlane:
    def test_zero_crossing_plane_preferred(self):
        # Two columns of regions: x=1 separates them with no crossings.
        lows = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]])
        highs = np.array([[1.0, 1.0], [1.0, 2.0], [2.0, 1.0], [2.0, 2.0]])
        dim, plane = _choose_region_plane(lows, highs)
        crossed = np.sum((lows[:, dim] < plane) & (highs[:, dim] > plane))
        assert crossed == 0

    def test_no_valid_plane_raises(self):
        lows = np.array([[0.0], [0.0]])
        highs = np.array([[1.0], [1.0]])
        with pytest.raises(IndexError_):
            _choose_region_plane(lows, highs)


class TestTree:
    def test_point_query_single_path(self, rng):
        # The K-D-B-tree's defining property (Section 2.1): a point
        # lookup reads exactly one node per level.
        pts = rng.random((500, 4))
        tree = KDBTree(4)
        tree.load(pts)
        tree.store.drop_cache()
        before = tree.stats.snapshot()
        tree._containing_path(pts[123])
        assert tree.stats.since(before).page_reads == tree.height

    def test_partition_is_exhaustive_and_disjoint(self, rng):
        tree = KDBTree(3)
        tree.load(rng.random((400, 3)))
        tree.check_invariants()
        # Any point in space lands in exactly one leaf.
        for _ in range(20):
            q = rng.random(3) * 2 - 0.5
            path = tree._containing_path(q)
            assert path[-1].is_leaf

    def test_forced_split_preserves_contents(self, rng):
        # Build deep enough for internal splits (which force-split
        # children) and verify nothing is lost.
        pts = rng.random((3000, 2))
        tree = KDBTree(2)
        tree.load(pts)
        assert tree.size == 3000
        values = sorted(v for _, v in tree.iter_points())
        assert values == list(range(3000))
        tree.check_invariants()
        q = rng.random(2)
        assert [n.value for n in tree.nearest(q, 15)] == brute_force_knn(pts, q, 15)

    def test_empty_leaves_tolerated(self, rng):
        # Forced splits may produce empty leaves; queries must survive them.
        pts = rng.random((2000, 2))
        tree = KDBTree(2)
        tree.load(pts)
        empty = sum(1 for leaf in tree.iter_leaves() if leaf.count == 0)
        # Not asserted > 0 (distribution-dependent), but the tree must be
        # consistent either way.
        assert empty >= 0
        tree.check_invariants()

    def test_delete(self, rng):
        pts = rng.random((100, 3))
        tree = KDBTree(3)
        tree.load(pts)
        tree.delete(pts[5], value=5)
        assert tree.size == 99
        assert 5 not in [v for _, v in tree.iter_points()]
        tree.check_invariants()

    def test_delete_missing_raises(self, rng):
        tree = KDBTree(3)
        tree.load(rng.random((20, 3)))
        with pytest.raises(KeyNotFoundError):
            tree.delete(np.full(3, 7.7))

    def test_storage_utilization_not_guaranteed(self, rng):
        # The paper's Section 2.1 criticism: forced splits break minimum
        # utilization.  Document the behaviour: fill factors may fall
        # under 40%, which the other trees never allow.
        pts = rng.random((2000, 2))
        tree = KDBTree(2)
        tree.load(pts)
        fills = [leaf.count for leaf in tree.iter_leaves()]
        assert min(fills) >= 0  # empties allowed
        assert tree.size == sum(fills)
