"""Tests for every experiment function in repro.bench.experiments.

Each experiment runs here at a tiny scale, asserting table shape and the
internal consistency of its rows (the qualitative paper claims are
asserted at benchmark scale in benchmarks/).
"""

import pytest

from repro.bench import experiments as exp


@pytest.fixture(autouse=True)
def fresh_caches():
    exp.clear_caches()
    yield
    exp.clear_caches()


class TestScaling:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert exp.scale() == 1.0
        assert exp.uniform_sizes() == [2000, 5000, 10000]
        assert exp.real_sizes() == [1000, 2500, 5000]
        assert exp.dims_sweep() == [1, 2, 4, 8, 16, 32, 64]

    def test_minimum_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.01")
        assert all(size >= 200 for size in exp.uniform_sizes())

    def test_query_count_scales(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.1")
        small = exp.query_count()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.0")
        big = exp.query_count()
        assert 10 <= small <= big <= 100


class TestDatasets:
    def test_unknown_family(self):
        with pytest.raises(ValueError):
            exp.get_dataset("zipf", size=10, dims=2)

    def test_cluster_params(self):
        data = exp.get_dataset("cluster", n_clusters=3, points_per_cluster=20,
                               dims=4)
        assert data.shape == (60, 4)

    def test_unknown_index_kind(self):
        with pytest.raises(ValueError):
            exp.get_index("btree", "uniform", size=50, dims=2)


class TestExperimentTables:
    def test_query_experiment_rows(self):
        headers, rows = exp.query_experiment(
            "uniform", [300], ("sstree", "srtree"), dims=4, k=5
        )
        assert headers[0] == "size"
        assert len(rows) == 2
        for row in rows:
            size, kind, cpu, reads, node_reads, leaf_reads, dist = row
            assert size == 300
            assert reads == pytest.approx(node_reads + leaf_reads)
            assert cpu > 0 and dist > 0

    def test_region_experiment_rows(self):
        headers, rows = exp.region_experiment(
            "uniform", [300], ("rstar", "sstree", "srtree"), dims=4
        )
        assert len(rows) == 3
        regions = {row[1]: row[2] for row in rows}
        assert regions == {"rstar": "rect", "sstree": "sphere", "srtree": "both"}
        for row in rows:
            assert row[3] >= 0 and row[4] >= 0  # volumes
            assert row[5] > 0 and row[6] > 0    # diameters

    def test_ss_rect_volume_rows(self):
        headers, rows = exp.ss_rect_volume_experiment([300], dims=4)
        (size, sphere_vol, rect_vol, ratio), = rows
        assert size == 300
        assert rect_vol <= sphere_vol
        assert ratio == pytest.approx(rect_vol / sphere_vol)

    def test_insertion_experiment_rows(self):
        headers, rows = exp.insertion_experiment(
            "uniform", [250], kinds=("sstree",), dims=4
        )
        (size, kind, cpu, accesses), = rows
        assert kind == "sstree" and cpu > 0 and accesses > 0

    def test_read_breakdown_rows(self):
        headers, rows = exp.read_breakdown_experiment(
            "uniform", [300], kinds=("sstree", "srtree"), dims=4, k=5
        )
        for row in rows:
            assert row[4] == pytest.approx(row[2] + row[3])

    def test_dimensionality_rows(self):
        headers, rows = exp.dimensionality_experiment(
            "uniform", [2, 4], kinds=("srtree",), k=3, size=250
        )
        assert [row[0] for row in rows] == [2, 4]

    def test_leaf_access_rows(self):
        headers, rows = exp.leaf_access_experiment(
            [2], size=250, kinds=("srtree",), k=3
        )
        (dims, kind, total, read, pct), = rows
        assert 0 < read <= total
        assert pct == pytest.approx(100.0 * read / total)

    def test_distance_concentration_rows(self):
        headers, rows = exp.distance_concentration_experiment([2, 8], size=300)
        assert rows[0][1] <= rows[0][2] <= rows[0][3]  # min <= avg <= max
        assert rows[1][4] > rows[0][4]  # concentration grows with dims

    def test_cluster_count_rows(self):
        headers, rows = exp.cluster_count_experiment(
            [2, 10], total_points=300, dims=4, kinds=("srtree",), k=3
        )
        assert [row[0] for row in rows] == [2, 10]
        assert all(row[3] > 0 for row in rows)

    def test_fanout_experiment_dims(self):
        headers, rows = exp.fanout_experiment(dims_list=[4, 16])
        assert len(headers) == 1 + 2 + 2
        srx_free = [row for row in rows if row[0] == "srtree"]
        assert srx_free[0][2] == 20  # node capacity at D=16

    def test_height_experiment_kinds(self):
        headers, rows = exp.height_experiment(
            "uniform", sizes=[250], dims=4, kinds=("srtree",)
        )
        assert rows[0][0] == "srtree"
        assert rows[0][1] >= 2
