"""Ablations: isolating the SR-tree's two region rules (beyond the paper).

The SR-tree differs from the SS-tree in exactly two rules:

* the Section-4.2 **radius rule** ``min(d_s, d_r)`` (vs the SS-tree's
  ``d_s``), and
* the Section-4.4 **MINDIST rule** ``max(sphere, rect)`` (vs a single
  shape).

Each ablation holds everything else fixed (tree shape is identical
across rules, since routing uses centroids only) and toggles one rule,
attributing the paper's end-to-end win to its parts.
"""

from conftest import archive

from repro.bench.experiments import get_dataset, scaled
from repro.bench.runner import run_query_batch
from repro.indexes import SRTree
from repro.workloads import sample_queries


def _build(data, **rules) -> SRTree:
    tree = SRTree(data.shape[1], **rules)
    tree.load(data)
    tree.stats.reset()
    return tree


def _reads(tree, queries) -> float:
    return run_query_batch(tree, queries, k=21).page_reads


def test_ablation_radius_rule(benchmark):
    data = get_dataset(
        "cluster", n_clusters=20, points_per_cluster=scaled(150), dims=16
    )
    queries = sample_queries(data, 25, seed=7)

    paper = _build(data, radius_rule="min")
    ss_radius = _build(data, radius_rule="sphere")
    rows = [
        ["min(d_s, d_r)  (paper)", _reads(paper, queries)],
        ["d_s only  (SS rule)", _reads(ss_radius, queries)],
    ]
    archive("ablation_radius_rule",
            "Ablation: SR-tree radius update rule (cluster data, k=21)",
            ["radius rule", "disk_reads"], rows)

    # The tightened radius can only help (same tree, smaller spheres).
    assert rows[0][1] <= rows[1][1] * 1.02

    benchmark.pedantic(lambda: _reads(paper, queries[:5]), rounds=3, iterations=1)


def test_ablation_mindist_rule(benchmark):
    data = get_dataset(
        "cluster", n_clusters=20, points_per_cluster=scaled(150), dims=16
    )
    queries = sample_queries(data, 25, seed=7)

    combined = _build(data, mindist_rule="max")
    sphere_only = _build(data, mindist_rule="sphere")
    rect_only = _build(data, mindist_rule="rect")
    rows = [
        ["max(sphere, rect)  (paper)", _reads(combined, queries)],
        ["sphere only", _reads(sphere_only, queries)],
        ["rect only", _reads(rect_only, queries)],
    ]
    archive("ablation_mindist_rule",
            "Ablation: SR-tree search distance rule (cluster data, k=21)",
            ["MINDIST rule", "disk_reads"], rows)

    # The combined bound prunes at least as well as either single shape.
    assert rows[0][1] <= rows[1][1] + 1e-9
    assert rows[0][1] <= rows[2][1] + 1e-9

    benchmark.pedantic(lambda: _reads(combined, queries[:5]), rounds=3,
                       iterations=1)
