"""Write-ahead log: commit protocol, replay idempotency, torn tails."""

from __future__ import annotations

import os

import pytest

from repro.exceptions import WALError
from repro.storage import (
    InMemoryPageFile,
    WriteAheadLog,
    open_wal,
    recover,
    scan_wal,
)

PAGE = 64


@pytest.fixture
def log_path(tmp_path):
    return str(tmp_path / "test.wal")


def fresh_pagefile(pages: int = 8) -> InMemoryPageFile:
    pf = InMemoryPageFile(PAGE)
    for pid in range(pages):
        pf.ensure_allocated(pid)
    return pf


def image(tag: bytes) -> bytes:
    return tag + b"\x00" * (PAGE - len(tag))


def test_commit_then_recover_replays_pages(log_path):
    wal = WriteAheadLog(log_path)
    wal.begin()
    wal.log_page(2, image(b"two"))
    wal.log_page(3, image(b"three"))
    wal.log_meta(image(b"meta"))
    wal.commit()
    wal.close()

    pf = fresh_pagefile()
    report = recover(pf, log_path)
    assert report.committed_txns == 1
    assert report.replayed_pages == 2
    assert report.replayed_meta
    assert pf.read(2) == image(b"two")
    assert pf.read(3) == image(b"three")
    assert pf.read(0) == image(b"meta")  # META_PAGE_ID == 0


def test_uncommitted_txn_is_discarded(log_path):
    wal = WriteAheadLog(log_path)
    wal.begin()
    wal.log_page(1, image(b"committed"))
    wal.commit()
    wal.begin()
    wal.log_page(1, image(b"doomed"))
    wal.close()  # crash before commit

    pf = fresh_pagefile()
    report = recover(pf, log_path)
    assert report.committed_txns == 1
    assert report.discarded_txns == 1
    assert pf.read(1) == image(b"committed")


def test_replay_is_idempotent(log_path):
    wal = WriteAheadLog(log_path)
    for n in range(3):
        wal.begin()
        wal.log_page(n, image(b"v%d" % n))
        wal.commit()
    wal.close()

    pf = fresh_pagefile()
    recover(pf, log_path, truncate=False)
    first = [pf.read(pid) for pid in range(3)]
    recover(pf, log_path, truncate=False)  # replay the same log again
    second = [pf.read(pid) for pid in range(3)]
    assert first == second


def test_later_txn_wins_on_the_same_page(log_path):
    wal = WriteAheadLog(log_path)
    wal.begin()
    wal.log_page(1, image(b"old"))
    wal.commit()
    wal.begin()
    wal.log_page(1, image(b"new"))
    wal.commit()
    wal.close()

    pf = fresh_pagefile()
    recover(pf, log_path)
    assert pf.read(1) == image(b"new")


def test_torn_tail_is_discarded(log_path):
    wal = WriteAheadLog(log_path)
    wal.begin()
    wal.log_page(1, image(b"good"))
    wal.commit()
    wal.begin()
    wal.log_page(2, image(b"half"))
    wal.commit()
    wal.close()
    # Tear the file inside the second transaction's records.
    size = os.path.getsize(log_path)
    with open(log_path, "r+b") as handle:
        handle.truncate(size - PAGE // 2)

    committed, report = scan_wal(log_path)
    assert len(committed) == 1
    assert report.discarded_bytes > 0
    pf = fresh_pagefile()
    recover(pf, log_path)
    assert pf.read(1) == image(b"good")
    from repro.exceptions import PageNotFoundError

    with pytest.raises(PageNotFoundError):
        pf.read(2)  # the torn transaction was never replayed


def test_corrupt_record_stops_the_scan(log_path):
    wal = WriteAheadLog(log_path)
    wal.begin()
    wal.log_page(1, image(b"ok"))
    wal.commit()
    wal.begin()
    wal.log_page(2, image(b"bad"))
    wal.commit()
    wal.close()
    # Flip a bit in the *second* transaction's page payload.
    with open(log_path, "r+b") as handle:
        data = bytearray(handle.read())
        idx = data.index(b"bad")
        data[idx] ^= 0xFF
        handle.seek(0)
        handle.write(bytes(data))

    committed, _report = scan_wal(log_path)
    assert [t.txn_id for t in committed] == [1]


def test_recovery_truncates_the_log(log_path):
    wal = WriteAheadLog(log_path)
    wal.begin()
    wal.log_page(1, image(b"x"))
    wal.commit()
    wal.close()
    assert os.path.getsize(log_path) > 0
    recover(fresh_pagefile(), log_path)
    assert os.path.getsize(log_path) == 0


def test_open_wal_continues_txn_id_sequence(log_path):
    wal = WriteAheadLog(log_path)
    first = wal.begin()
    wal.log_page(1, image(b"a"))
    wal.commit()
    wal.close()

    wal2 = open_wal(log_path)
    second = wal2.begin()
    wal2.commit()
    wal2.close()
    assert second > first

    committed, _ = scan_wal(log_path)
    assert {t.txn_id for t in committed} == {first, second}


def test_abort_drops_records(log_path):
    wal = WriteAheadLog(log_path)
    wal.begin()
    wal.log_page(1, image(b"nope"))
    wal.abort()
    wal.begin()
    wal.log_page(1, image(b"yes"))
    wal.commit()
    wal.close()

    pf = fresh_pagefile()
    recover(pf, log_path)
    assert pf.read(1) == image(b"yes")


def test_txn_protocol_errors(log_path):
    wal = WriteAheadLog(log_path)
    with pytest.raises(WALError):
        wal.log_page(1, image(b"no txn"))
    with pytest.raises(WALError):
        wal.commit()
    wal.begin()
    with pytest.raises(WALError):
        wal.begin()
    wal.abort()
    wal.close()


def test_commit_reports_the_fsync_boundary(log_path):
    """commit() returns True exactly when it fsynced — the signal the
    node store uses to keep batched commits off the data file."""
    wal = WriteAheadLog(log_path, sync_every=3)
    outcomes = []
    for _ in range(6):
        wal.begin()
        wal.log_page(1, image(b"p"))
        outcomes.append(wal.commit())
    wal.close()
    assert outcomes == [False, False, True, False, False, True]

    wal1 = WriteAheadLog(log_path + ".solo", sync_every=1)
    wal1.begin()
    assert wal1.commit() is True  # unbatched: every commit is durable
    wal1.close()


def test_sync_every_batches_fsyncs(log_path, monkeypatch):
    fsyncs = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync",
                        lambda fd: (fsyncs.append(fd), real_fsync(fd))[1])
    wal = WriteAheadLog(log_path, sync_every=3)
    for _ in range(6):
        wal.begin()
        wal.log_page(1, image(b"p"))
        wal.commit()
    wal.close()
    assert len(fsyncs) == 2  # 6 commits / sync_every=3

    # Everything still recovers: flush-on-commit keeps the records
    # visible to this process even between fsyncs.
    committed, _ = scan_wal(log_path)
    assert len(committed) == 6


def test_oversized_page_image_rejected(log_path):
    wal = WriteAheadLog(log_path)
    wal.begin()
    wal.log_page(1, b"z" * (PAGE * 2))
    wal.commit()
    wal.close()
    with pytest.raises(WALError):
        recover(fresh_pagefile(), log_path)


def test_wal_commits_metric_counts(log_path):
    from repro.obs.hooks import WAL_COMMITS

    before = WAL_COMMITS.value
    wal = WriteAheadLog(log_path)
    wal.begin()
    wal.commit()
    wal.close()
    assert WAL_COMMITS.value == before + 1
