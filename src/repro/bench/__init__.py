"""Benchmark harness: measurement runners and per-figure experiments.

* :mod:`~repro.bench.runner` — query batches and build-cost measurement
  with the paper's cold-buffer methodology;
* :mod:`~repro.bench.experiments` — one function per paper table/figure,
  with process-wide data-set/index memoization;
* :mod:`~repro.bench.report` — fixed-width table rendering and report
  archiving.
"""

from .report import format_table, format_value, write_report
from .runner import BuildCost, QueryCost, build_with_cost, run_query_batch

__all__ = [
    "BuildCost",
    "QueryCost",
    "build_with_cost",
    "format_table",
    "format_value",
    "run_query_batch",
    "write_report",
]
