"""Flight recorder: an always-on ring of the last N query records.

When an operator asks "what were the slowest queries in the last
minute?", metrics can only answer in aggregate (histogram buckets) and
the tracer only answers if someone had it enabled in advance.  The
flight recorder fills the gap: :func:`repro.obs.hooks.observed_query`
appends one small :class:`QueryRecord` per query — op, ``k``, wall
time, page reads split by level, buffer hits, snapshot epoch, worker
thread, degradation — into a bounded deque, always on, no locks beyond
the GIL-atomic append.

**Tail sampling.**  A query whose wall time breaches
:attr:`FlightRecorder.slow_query_ms` is flagged ``slow`` (the hooks
layer emits a ``slow_query`` WARN event) and *arms* the tracer for the
next
``trace_tail`` queries on the main thread: those runs are recorded with
full per-level trace detail (``QueryRecord.levels``, the
:func:`repro.obs.explain.level_breakdown` tallies) even though ambient
tracing is off.  A slow query that was itself armed (e.g. the slowness
repeats) therefore carries its own traversal breakdown.  Arming never
fights an explicitly enabled tracer and never touches worker threads —
the tracer is process-global and single-threaded by design.

::

    from repro.obs import FLIGHT

    FLIGHT.configure(slow_query_ms=25.0)
    ...
    for rec in FLIGHT.slowest(5):
        print(rec.op, rec.wall_ms, rec.page_reads, rec.levels)
    print(FLIGHT.percentiles())     # {"p50": ..., "p95": ..., ...}
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

__all__ = ["FLIGHT", "FlightRecorder", "QueryRecord"]

#: Default ring capacity (queries retained).
DEFAULT_CAPACITY = 256

#: Default latency threshold (ms) above which a query is flagged slow.
DEFAULT_SLOW_QUERY_MS = 100.0

#: How many follow-up queries get full trace detail after a breach.
DEFAULT_TRACE_TAIL = 4

_PERCENTILES = (50, 90, 95, 99)


@dataclass
class QueryRecord:
    """One query as the flight recorder saw it."""

    __slots__ = (
        "query_id", "op", "index_kind", "k", "wall_ms", "page_reads",
        "node_reads", "leaf_reads", "buffer_hits", "distance_computations",
        "epoch", "worker", "degraded_reason", "slow", "traced", "levels",
        "ts",
    )

    query_id: int
    op: str
    index_kind: str
    k: int | None
    wall_ms: float
    page_reads: int
    node_reads: int
    leaf_reads: int
    buffer_hits: int
    distance_computations: int
    epoch: int | None
    worker: str
    degraded_reason: str | None
    slow: bool
    traced: bool
    levels: dict | None
    ts: float

    def to_dict(self) -> dict:
        """A JSON-friendly dict (``/varz``, ``repro slow --format json``)."""
        return {name: getattr(self, name) for name in self.__slots__}


class FlightRecorder:
    """Bounded ring of :class:`QueryRecord` with slow-query tail sampling.

    Parameters
    ----------
    capacity:
        Queries retained (oldest evicted first).
    slow_query_ms:
        Wall-time threshold above which a query is flagged ``slow``
        (``None`` disables flagging and tail sampling).
    trace_tail:
        Queries to run under the tracer after each breach (main thread
        only; 0 disables arming).
    """

    def __init__(self, *, capacity: int = DEFAULT_CAPACITY,
                 slow_query_ms: float | None = DEFAULT_SLOW_QUERY_MS,
                 trace_tail: int = DEFAULT_TRACE_TAIL) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._ring: deque[QueryRecord] = deque(maxlen=capacity)
        self.slow_query_ms = slow_query_ms
        self.trace_tail = trace_tail
        self._trace_budget = 0
        self._recorded = 0
        self._slow = 0

    # -- configuration -----------------------------------------------------

    def configure(self, *, capacity=..., slow_query_ms=...,
                  trace_tail=...) -> None:
        """Change ring size or sampling knobs (unspecified = keep)."""
        if capacity is not ...:
            if capacity < 1:
                raise ValueError(f"capacity must be positive, got {capacity}")
            self._ring = deque(self._ring, maxlen=capacity)
        if slow_query_ms is not ...:
            self.slow_query_ms = slow_query_ms
        if trace_tail is not ...:
            self.trace_tail = trace_tail

    @property
    def capacity(self) -> int:
        """Ring size (records retained)."""
        return self._ring.maxlen or 0

    @property
    def recorded(self) -> int:
        """Queries recorded since process start (ring may hold fewer)."""
        return self._recorded

    @property
    def slow_queries(self) -> int:
        """Queries that breached :attr:`slow_query_ms` since start."""
        return self._slow

    # -- tail sampling -------------------------------------------------------

    def should_trace(self) -> bool:
        """Consume one armed-tracing slot, if any (main thread only).

        Called by :func:`~repro.obs.hooks.observed_query` on entry; a
        ``True`` return means the hook should run this query under a
        tracer span and attach the per-level breakdown to its record.
        """
        if self._trace_budget <= 0:
            return False
        if threading.current_thread() is not threading.main_thread():
            return False
        self._trace_budget -= 1
        return True

    def _arm(self) -> None:
        if self.trace_tail > 0:
            self._trace_budget = max(self._trace_budget, self.trace_tail)

    # -- recording -----------------------------------------------------------

    def record(self, *, query_id: int, op: str, index_kind: str,
               k: int | None, wall_ms: float, page_reads: int,
               node_reads: int, leaf_reads: int, buffer_hits: int,
               distance_computations: int, epoch: int | None,
               worker: str, degraded_reason: str | None = None,
               levels: dict | None = None) -> QueryRecord:
        """Append one query record; flags it slow and arms tail tracing."""
        threshold = self.slow_query_ms
        slow = threshold is not None and wall_ms > threshold
        rec = QueryRecord(
            query_id=query_id,
            op=op,
            index_kind=index_kind,
            k=k,
            wall_ms=wall_ms,
            page_reads=page_reads,
            node_reads=node_reads,
            leaf_reads=leaf_reads,
            buffer_hits=buffer_hits,
            distance_computations=distance_computations,
            epoch=epoch,
            worker=worker,
            degraded_reason=degraded_reason,
            slow=slow,
            traced=levels is not None,
            levels=levels,
            ts=time.time(),
        )
        self._ring.append(rec)
        self._recorded += 1
        if slow:
            self._slow += 1
            self._arm()
        return rec

    # -- inspection ------------------------------------------------------------

    def records(self, n: int | None = None) -> list[QueryRecord]:
        """The most recent ``n`` records, oldest first (all when ``None``)."""
        records = list(self._ring)
        if n is not None:
            records = records[-n:]
        return records

    def slowest(self, n: int = 10) -> list[QueryRecord]:
        """The ``n`` slowest retained queries, slowest first."""
        return sorted(self._ring, key=lambda r: r.wall_ms, reverse=True)[:n]

    def percentiles(self, op: str | None = None) -> dict[str, float]:
        """Wall-time percentiles over the retained records.

        ``{"count": N, "p50": ..., "p90": ..., "p95": ..., "p99": ...}``
        in milliseconds, optionally restricted to one ``op``; all-zero
        when nothing matched.
        """
        samples = sorted(
            r.wall_ms for r in self._ring if op is None or r.op == op
        )
        out: dict[str, float] = {"count": float(len(samples))}
        for p in _PERCENTILES:
            if not samples:
                out[f"p{p}"] = 0.0
            else:
                # Nearest-rank on the retained window; no numpy needed.
                rank = min(len(samples) - 1,
                           max(0, round(p / 100 * (len(samples) - 1))))
                out[f"p{p}"] = samples[rank]
        return out

    def summary(self) -> dict:
        """Aggregate view for ``/varz`` and ``repro slow``."""
        by_op: dict[str, int] = {}
        for rec in self._ring:
            by_op[rec.op] = by_op.get(rec.op, 0) + 1
        return {
            "capacity": self.capacity,
            "retained": len(self._ring),
            "recorded": self._recorded,
            "slow_queries": self._slow,
            "slow_query_ms": self.slow_query_ms,
            "trace_tail": self.trace_tail,
            "by_op": by_op,
            "latency_ms": self.percentiles(),
        }

    def reset(self) -> None:
        """Empty the ring and counters (threshold/capacity kept)."""
        self._ring.clear()
        self._recorded = 0
        self._slow = 0
        self._trace_budget = 0


FLIGHT = FlightRecorder()
"""The process-wide flight recorder ``observed_query`` records into."""
