"""The SS-tree (White & Jain, ICDE 1996).

The sphere-based similarity index the paper improves upon.  Node regions
are bounding spheres centered on the centroid of the underlying points;
insertion picks the subtree with the nearest centroid; splits use the
dimension with the highest coordinate variance; overflowing nodes shed
entries through forced reinsertion unless a reinsertion has already
been made at the same node (the SS-tree's variant of the R* mechanism,
Section 2.3 of the paper).
"""

from __future__ import annotations

import numpy as np

from ..geometry.sphere import mindist_point_spheres
from ..storage.nodes import InternalNode, LeafNode
from .base import Entry
from .dynamic import DynamicTree

__all__ = ["SSTree", "variance_split", "centroid_of_node"]

Node = LeafNode | InternalNode


class SSTree(DynamicTree):
    """Dynamic SS-tree over points, with paged storage."""

    NAME = "sstree"
    HAS_RECTS = False
    HAS_SPHERES = True
    HAS_WEIGHTS = True

    # ------------------------------------------------------------------
    # ChooseSubtree: nearest centroid
    # ------------------------------------------------------------------

    def _choose_child(self, node: InternalNode, entry: Entry) -> int:
        diff = node.centers[: node.count] - entry.center
        return int(np.argmin(np.einsum("ij,ij->i", diff, diff)))

    # ------------------------------------------------------------------
    # Split: highest-variance dimension
    # ------------------------------------------------------------------

    def _split_indices(self, node: Node) -> tuple[np.ndarray, np.ndarray]:
        if node.is_leaf:
            coords = node.points[: node.count]
            m = self.leaf_min_fill
        else:
            coords = node.centers[: node.count]
            m = self.node_min_fill
        return variance_split(coords, m)

    # ------------------------------------------------------------------
    # regions
    # ------------------------------------------------------------------

    def _entry_fields(self, node: Node) -> dict:
        center, radius, weight = self._sphere_of(node)
        return {"center": center, "radius": radius, "weight": weight}

    def _sphere_of(self, node: Node) -> tuple[np.ndarray, float, int]:
        """Centroid, radius, and weight of a node's bounding sphere.

        For a leaf the center is the centroid of its points; for an
        internal node it is the weighted centroid of the child centroids
        (weights being subtree point counts), and the radius reaches the
        farthest point of any child sphere — the SS-tree's update rule,
        which the SR-tree then tightens (see
        :meth:`SRTree._entry_fields <repro.indexes.srtree.SRTree._entry_fields>`).
        """
        if node.is_leaf:
            pts = node.points[: node.count]
            center = pts.mean(axis=0)
            diff = pts - center
            radius = float(np.sqrt(np.max(np.einsum("ij,ij->i", diff, diff))))
            return center, radius, node.count
        n = node.count
        weights = node.weights[:n].astype(np.float64)
        total = weights.sum()
        center = (node.centers[:n] * weights[:, None]).sum(axis=0) / total
        diff = node.centers[:n] - center
        gaps = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        radius = float(np.max(gaps + node.radii[:n]))
        return center, radius, int(total)

    def child_mindists(self, node: InternalNode, point: np.ndarray) -> np.ndarray:
        n = node.count
        return mindist_point_spheres(point, node.centers[:n], node.radii[:n])

    # ------------------------------------------------------------------
    # forced reinsertion
    # ------------------------------------------------------------------

    def _should_reinsert(self, node: Node, is_root: bool) -> bool:
        # Unless a reinsertion has been made at this same node (paper
        # Section 2.3); the flag is cleared when the node splits.
        return not node.reinserted

    def _mark_reinserted(self, node: Node) -> None:
        node.reinserted = True

    def _reinsert_indices(self, node: Node, count: int) -> np.ndarray:
        center = centroid_of_node(node)
        if node.is_leaf:
            coords = node.points[: node.count]
        else:
            coords = node.centers[: node.count]
        diff = coords - center
        dists = np.einsum("ij,ij->i", diff, diff)
        order = np.argsort(dists, kind="stable")
        # Evict the farthest entries; reinsert the closest of them first.
        return order[-count:]

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def _check_parent_entry(self, parent: InternalNode, slot: int, child: Node) -> None:
        from ..exceptions import InvariantViolationError

        center = parent.centers[slot]
        radius = float(parent.radii[slot])
        if child.is_leaf:
            diff = child.points[: child.count] - center
            reach = float(np.sqrt(np.max(np.einsum("ij,ij->i", diff, diff))))
        else:
            diff = child.centers[: child.count] - center
            gaps = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            reach = float(np.max(gaps + child.radii[: child.count]))
        if reach > radius + 1e-9:
            raise InvariantViolationError(
                f"parent {parent.page_id} entry {slot} sphere (r={radius:.6g}) "
                f"does not cover child {child.page_id} (reach {reach:.6g})"
            )


def centroid_of_node(node: Node) -> np.ndarray:
    """Centroid of a node's contents (weighted for internal nodes)."""
    if node.is_leaf:
        return node.points[: node.count].mean(axis=0)
    weights = node.weights[: node.count].astype(np.float64)
    return (node.centers[: node.count] * weights[:, None]).sum(axis=0) / weights.sum()


def variance_split(coords: np.ndarray, m: int) -> tuple[np.ndarray, np.ndarray]:
    """The SS-tree split of ``n`` coordinate rows into two groups.

    Chooses the dimension with the highest coordinate variance, then the
    split position (among those leaving at least ``m`` entries on each
    side) that minimizes the summed variance of the two groups along
    that dimension.
    """
    n = coords.shape[0]
    if not 1 <= m <= n // 2:
        m = max(1, min(m, n // 2))
    dim = int(np.argmax(np.var(coords, axis=0)))
    order = np.argsort(coords[:, dim], kind="stable")
    line = coords[order, dim]

    prefix = np.cumsum(line)
    prefix_sq = np.cumsum(line * line)
    total, total_sq = prefix[-1], prefix_sq[-1]

    best_cost = np.inf
    best_k = m
    for k in range(m, n - m + 1):
        sum_a, sq_a = prefix[k - 1], prefix_sq[k - 1]
        sum_b, sq_b = total - sum_a, total_sq - sq_a
        var_a = sq_a / k - (sum_a / k) ** 2
        count_b = n - k
        var_b = sq_b / count_b - (sum_b / count_b) ** 2
        cost = var_a + var_b
        if cost < best_cost:
            best_cost = cost
            best_k = k
    return order[:best_k].copy(), order[best_k:].copy()
