"""Distance metrics.

The index structures themselves are built around the Euclidean metric
(their bounding spheres and MINDIST bounds assume it), matching the
paper.  These helpers exist for client code — result post-processing,
workload analysis, and the examples — that wants alternative metrics.
"""

from __future__ import annotations

import numpy as np

from ..geometry.point import as_point

__all__ = ["euclidean", "manhattan", "chebyshev", "minkowski", "histogram_intersection"]


def euclidean(a, b) -> float:
    """L2 distance — the metric every index in the library searches under."""
    a = as_point(a)
    b = as_point(b, dims=a.shape[0])
    return float(np.linalg.norm(a - b))


def manhattan(a, b) -> float:
    """L1 (city-block) distance."""
    a = as_point(a)
    b = as_point(b, dims=a.shape[0])
    return float(np.sum(np.abs(a - b)))


def chebyshev(a, b) -> float:
    """L-infinity distance."""
    a = as_point(a)
    b = as_point(b, dims=a.shape[0])
    return float(np.max(np.abs(a - b)))


def minkowski(a, b, p: float) -> float:
    """General Lp distance for ``p >= 1``."""
    if p < 1:
        raise ValueError(f"Minkowski order must be >= 1, got {p}")
    a = as_point(a)
    b = as_point(b, dims=a.shape[0])
    return float(np.sum(np.abs(a - b) ** p) ** (1.0 / p))


def histogram_intersection(a, b) -> float:
    """Histogram-intersection *dissimilarity* between two histograms.

    ``1 - sum(min(a_i, b_i))`` for L1-normalized histograms — the classic
    color-histogram similarity of Swain & Ballard, included because the
    paper's "real" data set is color histograms.  Not used inside the
    trees (it is not the metric their regions bound); useful for
    re-ranking candidate sets fetched with a Euclidean k-NN query, as
    ``examples/image_retrieval.py`` demonstrates.
    """
    a = as_point(a)
    b = as_point(b, dims=a.shape[0])
    return float(1.0 - np.minimum(a, b).sum())
