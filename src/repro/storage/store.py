"""The node store: page file + buffer pool + codec + I/O accounting.

Every index does all of its node I/O through a :class:`NodeStore`.  The
store owns the physical read/write counters that the benchmarks report,
splitting them into node-level and leaf-level transfers (Figure 14 of
the paper), and exposes pinning so tree operations can hold node objects
across buffer evictions safely.

**Snapshot isolation.**  The store also publishes an *epoch* — a counter
of committed states — and retains copy-on-write images of committed
pages while any snapshot is pinned at an older epoch.  A
:class:`~repro.storage.snapshot.SnapshotStore` pins an epoch and reads
exclusively from it: first the retained version chain, then the
pending-apply table, then the page file, never the uncommitted shadow
table of an in-flight transaction.  In WAL mode the epoch advances at
every ``commit_txn`` durability point; without a WAL,
:meth:`publish_epoch` advances it explicitly (snapshot creation does
this, flushing dirty buffers first).  All page-file access and all
version bookkeeping is serialized on one re-entrant lock so snapshot
readers in other threads can share the file handle with the single
writer; buffer-pool hits never touch the lock, keeping the
single-threaded fast path unchanged.  See ``docs/CONCURRENCY.md``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right

from ..exceptions import PageNotFoundError, StorageError, WALError
from ..obs.tracer import trace
from .buffer import BufferPool
from .checksums import ChecksumPageFile
from .constants import META_PAGE_ID
from .layout import NodeLayout
from .nodes import InternalNode, LeafNode
from .pagecache import PageCache
from .pagefile import InMemoryPageFile, PageFile
from .serializer import NodeCodec, pack_meta, unpack_meta
from .stats import IOStats
from .wal import WriteAheadLog

__all__ = ["NodeStore", "DEFAULT_BUFFER_CAPACITY"]

Node = LeafNode | InternalNode

DEFAULT_BUFFER_CAPACITY = 512
"""Default buffer pool size in frames (4 MiB of 8 KiB pages)."""

CHANGE_LOG_EPOCHS = 64
"""How many epochs of changed-page sets the store remembers.

Snapshot refreshes use the change log to invalidate only the pages that
moved between the old and new epoch; a refresh spanning more epochs than
the log covers falls back to dropping the whole (private) buffer pool.
"""


class NodeStore:
    """Page-granular node storage for one index instance."""

    def __init__(
        self,
        layout: NodeLayout,
        pagefile: PageFile | None = None,
        buffer_capacity: int = DEFAULT_BUFFER_CAPACITY,
        stats: IOStats | None = None,
        page_cache_capacity: int = 0,
        wal: WriteAheadLog | None = None,
    ) -> None:
        self.layout = layout
        self.pagefile = pagefile if pagefile is not None else InMemoryPageFile(
            layout.page_size
        )
        if self.pagefile.page_size != layout.page_size:
            raise StorageError(
                f"page file page size {self.pagefile.page_size} does not match "
                f"layout page size {layout.page_size}"
            )
        self.codec = NodeCodec(layout)
        self.stats = stats if stats is not None else IOStats()
        self.buffer = BufferPool(buffer_capacity, self._write_back, stats=self.stats)
        #: Optional raw-image cache between the buffer pool and the page
        #: file; ``page_cache_capacity`` is in pages, 0 disables it (the
        #: default — benchmark read counts must not change under it).
        self.page_cache: PageCache | None = (
            PageCache(page_cache_capacity, stats=self.stats)
            if page_cache_capacity > 0
            else None
        )
        #: Optional write-ahead log.  While a transaction is open every
        #: page write is journaled and *shadowed* in memory instead of
        #: reaching the page file; :meth:`commit_txn` makes the shadow
        #: durable (WAL commit) and then applies it — immediately when
        #: the commit fsynced the log, otherwise at the next fsync
        #: boundary (the images wait in the pending-apply table so the
        #: data file never runs ahead of the durable log).
        self.wal = wal
        self._shadow: dict[int, bytes] = {}
        self._shadow_meta: bytes | None = None
        self._txn_freed: list[int] = []
        self._txn_allocated: list[int] = []
        # Committed-but-unsynced transactions (sync_every > 1): images
        # that must not touch the data file until the WAL records
        # covering them are fsynced.
        self._pending: dict[int, bytes] = {}
        self._pending_meta: bytes | None = None
        self._pending_frees: list[int] = []
        self._poisoned: str | None = None
        self._closed = False
        # -- snapshot machinery -----------------------------------------
        # One re-entrant lock serializes page-file access, the pending
        # table, and all version/epoch bookkeeping.  Buffer-pool hits
        # bypass it entirely (the pool is private to the writer thread).
        self._mu = threading.RLock()
        self._epoch = 0
        #: epoch -> number of live snapshot pins at that epoch.
        self._snapshot_pins: dict[int, int] = {}
        #: page -> ascending [(epoch, image)]: ``image`` was the
        #: committed content of the page up to and including ``epoch``.
        self._versions: dict[int, list[tuple[int, bytes]]] = {}
        #: epoch e -> pages whose committed content changed when e was
        #: published (bounded to CHANGE_LOG_EPOCHS entries).
        self._epoch_changes: dict[int, frozenset[int]] = {}
        self._dirty_since_publish = False

    @property
    def in_txn(self) -> bool:
        """Whether a WAL transaction is currently open."""
        return self.wal is not None and self.wal.in_txn

    @property
    def has_checksums(self) -> bool:
        """Whether the page stack seals pages with CRC trailers."""
        return isinstance(self.pagefile, ChecksumPageFile)

    @property
    def readonly(self) -> bool:
        """Whether the page stack rejects mutation (mmap-backed serving).

        A readonly store never flushes or saves: :meth:`close` skips the
        write-back path and ``SpatialIndex.close`` skips ``save()``.
        """
        return getattr(self.pagefile, "readonly", False)

    @property
    def poisoned(self) -> bool:
        """Whether a post-commit apply failure has disabled mutations.

        A transaction that reached its WAL COMMIT is durable; if
        applying its images to the data file then fails (ENOSPC, EIO,
        ...), the in-memory state and the data file diverge and *must
        not* be rolled back — the store poisons itself instead.  Reads
        keep working (the in-memory state is the committed state), but
        every further mutation raises until the file is reopened, which
        replays the WAL and repairs the data file.
        """
        return self._poisoned is not None

    def _poison(self, why: str) -> None:
        from ..obs.hooks import on_store_poisoned

        self._poisoned = why
        on_store_poisoned(why)

    def _require_healthy(self) -> None:
        if self._poisoned is not None:
            raise StorageError(
                "node store is poisoned after a post-commit failure "
                f"({self._poisoned}); the transaction is durable in the WAL "
                "but the data file is behind — reopen the index to recover"
            )

    def _require_writable(self) -> None:
        """Reject mutations on a readonly (mmap-backed) store *eagerly*.

        Dirtying a buffered node would otherwise "succeed" in memory and
        be silently discarded at close (readonly close never flushes) —
        a lost update disguised as a successful call.
        """
        if self.readonly:
            raise StorageError(
                "node store is read-only (memory-mapped serving copy); "
                "reopen the index writable to mutate it"
            )

    # ------------------------------------------------------------------
    # snapshots (epoch-pinned copy-on-write reads)
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The newest committed (published) epoch."""
        return self._epoch

    @property
    def snapshot_pins(self) -> int:
        """Number of live snapshot pins across all epochs."""
        with self._mu:
            return sum(self._snapshot_pins.values())

    def publish_epoch(self) -> int:
        """Flush and advance the epoch (non-WAL stores only).

        WAL stores publish at every ``commit_txn`` durability point;
        calling this on one (or inside an open transaction) is an error
        because flushing here would journal half a transaction.  The
        epoch only advances when something actually changed since the
        last publish, so repeated snapshot creation over a quiet store
        keeps one epoch (and retains nothing).
        """
        with self._mu:
            if self.wal is not None or self.in_txn:
                raise StorageError(
                    "publish_epoch() is only for stores without a WAL; "
                    "WAL stores publish at commit_txn()"
                )
            self.buffer.flush()
            if self._dirty_since_publish:
                self._epoch += 1
                self._dirty_since_publish = False
            return self._epoch

    def pin_snapshot(self, epoch: int | None = None) -> int:
        """Pin a committed epoch so its page images stay readable.

        ``epoch=None`` pins the newest committed epoch (publishing one
        first on non-WAL stores).  An explicit ``epoch`` must be the
        current epoch or one that is already pinned — that is how a
        caller holding one pin transfers other readers onto the same
        consistent state without racing a concurrent commit.  Returns
        the pinned epoch; every pin must be paired with
        :meth:`release_snapshot`.
        """
        with self._mu:
            if epoch is None and self.wal is None and not self._closed:
                self.publish_epoch()
            target = self._epoch if epoch is None else int(epoch)
            if target != self._epoch and target not in self._snapshot_pins:
                raise StorageError(
                    f"cannot pin epoch {target}: it is neither the current "
                    f"epoch ({self._epoch}) nor an already-pinned one, so "
                    "its page images may no longer be retained"
                )
            self._snapshot_pins[target] = self._snapshot_pins.get(target, 0) + 1
            return target

    def release_snapshot(self, epoch: int) -> None:
        """Release one pin taken with :meth:`pin_snapshot`."""
        with self._mu:
            count = self._snapshot_pins.get(epoch)
            if count is None:
                return
            if count <= 1:
                del self._snapshot_pins[epoch]
            else:
                self._snapshot_pins[epoch] = count - 1
            self._gc_versions()

    def read_image_at(self, page_id: int, epoch: int) -> bytes:
        """The committed image of a page as of ``epoch``.

        Resolution order: the retained version chain (first entry whose
        epoch is >= the snapshot epoch was current then), the
        pending-apply table (committed but not yet fsync-covered), the
        page file.  The uncommitted shadow table of an open transaction
        is deliberately invisible.
        """
        with self._mu:
            versions = self._versions.get(page_id)
            if versions:
                keys = [e for e, _ in versions]
                i = bisect_left(keys, epoch)
                if i < len(versions):
                    return versions[i][1]
            if page_id == META_PAGE_ID and self._pending_meta is not None:
                return self._pending_meta
            image = self._pending.get(page_id)
            if image is not None:
                return image
            return self.pagefile.read(page_id)

    def read_meta_at(self, epoch: int) -> dict:
        """The index metadata dict as of ``epoch``."""
        data = self.read_image_at(META_PAGE_ID, epoch)
        try:
            return unpack_meta(data)
        except Exception as exc:
            raise StorageError(
                f"meta page at epoch {epoch} is corrupt: {exc}"
            ) from exc

    def changed_pages_between(
        self, old_epoch: int, new_epoch: int
    ) -> frozenset[int] | None:
        """Pages whose committed content differs between two epochs.

        Returns ``None`` when the change log no longer covers the whole
        range (the caller must then treat every page as changed).
        """
        with self._mu:
            if new_epoch < old_epoch:
                return None
            changed: set[int] = set()
            for e in range(old_epoch + 1, new_epoch + 1):
                pages = self._epoch_changes.get(e)
                if pages is None:
                    return None
                changed.update(pages)
            return frozenset(changed)

    def _retain_current_image(self, page_id: int) -> None:
        """Retain the committed image of a page before it is superseded.

        Called under ``_mu``, keyed at the *current* (pre-bump) epoch,
        and strictly before the new content reaches the pending table or
        the page file.  Idempotent per epoch; pages that never had a
        committed image (fresh allocations) retain nothing.
        """
        versions = self._versions.get(page_id)
        if versions and versions[-1][0] >= self._epoch:
            return
        if page_id == META_PAGE_ID and self._pending_meta is not None:
            image: bytes | None = self._pending_meta
        else:
            image = self._pending.get(page_id)
        if image is None:
            try:
                image = self.pagefile.read(page_id)
            except (PageNotFoundError, StorageError):
                return
        if versions is None:
            versions = self._versions[page_id] = []
        versions.append((self._epoch, image))

    def _record_epoch_changes(self, changed) -> None:
        """Log the changed-page set of the epoch just published."""
        self._epoch_changes[self._epoch] = frozenset(changed)
        while len(self._epoch_changes) > CHANGE_LOG_EPOCHS:
            del self._epoch_changes[min(self._epoch_changes)]

    def _gc_versions(self) -> None:
        """Drop retained images no live snapshot can still read.

        A version entry ``(e, image)`` serves exactly the snapshots
        pinned in ``(previous_entry_epoch, e]``; entries serving no
        pinned epoch are dropped, and with no pins at all the whole
        table empties.
        """
        if not self._snapshot_pins:
            self._versions.clear()
            return
        pins = sorted(self._snapshot_pins)
        dead_pages = []
        for page_id, versions in self._versions.items():
            kept = []
            prev = -1
            for entry in versions:
                if bisect_right(pins, entry[0]) > bisect_right(pins, prev):
                    kept.append(entry)
                prev = entry[0]
            if kept:
                self._versions[page_id] = kept
            else:
                dead_pages.append(page_id)
        for page_id in dead_pages:
            del self._versions[page_id]

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------

    def new_leaf(self) -> LeafNode:
        """Allocate a page and return a fresh empty leaf bound to it."""
        self._require_writable()
        with self._mu:
            page_id = self.pagefile.allocate()
        if self.in_txn:
            self._txn_allocated.append(page_id)
        leaf = LeafNode(page_id, self.layout.dims, self.layout.leaf_capacity)
        self.buffer.put(leaf, dirty=True)
        return leaf

    def new_internal(self, level: int, extent: int = 1) -> InternalNode:
        """Allocate page(s) and return a fresh empty internal node.

        ``extent > 1`` creates an X-tree-style supernode spanning that
        many pages (see :class:`repro.indexes.srx.SRXTree`).
        """
        self._require_writable()
        with self._mu:
            page_id = self.pagefile.allocate()
            extra_pages = [self.pagefile.allocate() for _ in range(extent - 1)]
        node = InternalNode(
            page_id,
            self.layout.dims,
            self.layout.node_capacity_for(extent),
            level,
            has_rects=self.layout.has_rects,
            has_spheres=self.layout.has_spheres,
            has_weights=self.layout.has_weights,
        )
        node.extra_pages = extra_pages
        if self.in_txn:
            self._txn_allocated.extend(node.all_page_ids)
        self.buffer.put(node, dirty=True)
        return node

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------

    def read(self, page_id: int, *, pin: bool = False) -> Node:
        """Fetch a node, counting a physical read per page on a miss.

        A supernode spanning ``e`` pages costs ``e`` physical reads —
        the X-tree cost model.  When a trace span is active, every fetch
        is also recorded as a page event (hit or physical read) so
        EXPLAIN can attribute the query's I/O.

        With a :class:`~repro.storage.pagecache.PageCache` configured,
        a buffer-pool miss first probes the cache for the node's raw
        image; a hit decodes it (zero-copy) without touching the page
        file, counts **no** physical read, and is recorded on the span
        as a hit fetch plus ``span.page_cache_hits``.
        """
        node = self.buffer.get(page_id)
        if node is None:
            cache = self.page_cache
            image = cache.get(page_id) if cache is not None else None
            if image is not None:
                node = self.codec.decode(page_id, image)
                self.buffer.put(node, dirty=False)
                span = trace.active
                if span is not None:
                    span.page(page_id, node.level, node.extent, hit=True)
                    span.page_cache_hits += 1
                if pin:
                    self.buffer.pin(page_id)
                return node
            data = self._read_page_image(page_id)
            extent, extras = self.codec.peek_extent(data)
            if extent > 1:
                # join (not +=) so memoryview images from an mmap-backed
                # page file concatenate without needing bytes on the left.
                data = b"".join((data, *(self._read_page_image(p) for p in extras)))
            node = self.codec.decode(page_id, data)
            self.stats.page_reads += extent
            if node.is_leaf:
                self.stats.leaf_reads += extent
            else:
                self.stats.node_reads += extent
            self.buffer.put(node, dirty=False)
            if cache is not None:
                cache.put(page_id, data, extent)
            span = trace.active
            if span is not None:
                span.page(page_id, node.level, extent, hit=False)
        else:
            span = trace.active
            if span is not None:
                span.page(page_id, node.level, node.extent, hit=True)
        if pin:
            self.buffer.pin(page_id)
        return node

    def _read_page_image(self, page_id: int) -> bytes:
        """One physical page image, honouring shadow and pending tables.

        During a transaction the freshest copy of an evicted dirty page
        lives in the shadow table, not the data file; between a batched
        (unsynced) WAL commit and the next fsync boundary it lives in
        the pending-apply table.  Reading from either still counts as a
        physical read (the page *would* have come from disk had the
        buffer been larger), which preserves the EXPLAIN-pages ==
        ``IOStats.page_reads`` invariant.
        """
        if self._shadow:
            image = self._shadow.get(page_id)
            if image is not None:
                return image
        with self._mu:
            if self._pending:
                image = self._pending.get(page_id)
                if image is not None:
                    return image
            return self.pagefile.read(page_id)

    def write(self, node: Node) -> None:
        """Record that ``node`` was mutated (write-back happens lazily)."""
        self._require_writable()
        self.buffer.put(node, dirty=True)
        if self.page_cache is not None:
            self.page_cache.invalidate(node.page_id)

    def pin(self, page_id: int) -> None:
        """Protect a buffered page from eviction."""
        self.buffer.pin(page_id)

    def unpin(self, page_id: int) -> None:
        """Release a pin taken with :meth:`pin` or ``read(pin=True)``."""
        self.buffer.unpin(page_id)

    def free(self, node_or_id: Node | int) -> None:
        """Release every page of a node back to the page file.

        Inside a transaction the release is *deferred* to commit time:
        an aborted transaction must leave the committed tree intact, and
        the committed tree may still reference these pages.
        """
        self._require_writable()
        if isinstance(node_or_id, int):
            page_ids = [node_or_id]
        else:
            page_ids = node_or_id.all_page_ids
        self.buffer.discard(page_ids[0])
        if self.page_cache is not None:
            self.page_cache.invalidate(page_ids[0])
        if self.in_txn:
            for page_id in page_ids:
                self._shadow.pop(page_id, None)
            self._txn_freed.extend(page_ids)
            return
        with self._mu:
            for page_id in page_ids:
                if self._snapshot_pins:
                    # The in-memory page file discards content on free,
                    # so the committed image must be retained first.
                    self._retain_current_image(page_id)
                self._pending.pop(page_id, None)
                self.pagefile.free(page_id)
            self._dirty_since_publish = True

    def flush(self) -> None:
        """Write back every dirty buffered node.

        Also drains the pending-apply table (after fsyncing the WAL, so
        log-before-data ordering holds) — after a flush the data file
        carries every committed transaction.
        """
        self._require_healthy()
        self.buffer.flush()
        if self._has_pending:
            self.wal.sync()
            self._apply_pending()
        with self._mu:
            self.pagefile.sync()

    def drop_cache(self) -> None:
        """Flush, then empty the buffer pool and the page cache.

        The benchmark harness calls this before each measured query so
        that every query starts cold and the read counter matches the
        paper's per-query disk-read metric.
        """
        self.buffer.clear()
        if self.page_cache is not None:
            self.page_cache.clear()

    def _write_back(self, node: Node) -> None:
        image = self.codec.encode(node)
        page_size = self.layout.page_size
        in_txn = self.in_txn
        for i, page_id in enumerate(node.all_page_ids):
            chunk = image[i * page_size : (i + 1) * page_size]
            if in_txn:
                # Journal + shadow; the data file is untouched until
                # commit.  Chunks are padded so supernode reassembly
                # (first + extras concatenation) stays page aligned.
                if len(chunk) < page_size:
                    chunk = chunk + b"\x00" * (page_size - len(chunk))
                self.wal.log_page(page_id, chunk)
                self._shadow[page_id] = chunk
            else:
                with self._mu:
                    if self._snapshot_pins:
                        self._retain_current_image(page_id)
                    self.pagefile.write(page_id, chunk)
                    self._dirty_since_publish = True
        extent = node.extent
        self.stats.page_writes += extent
        if node.is_leaf:
            self.stats.leaf_writes += extent
        else:
            self.stats.node_writes += extent

    # ------------------------------------------------------------------
    # metadata (persistence)
    # ------------------------------------------------------------------

    def write_meta(self, meta: dict) -> None:
        """Persist an index metadata dict into the reserved meta page."""
        self._require_writable()
        image = pack_meta(meta)
        if len(image) > self.layout.page_size:
            raise StorageError("index metadata does not fit in the meta page")
        if self.in_txn:
            self.wal.log_meta(image)
            self._shadow_meta = image
            return
        self._require_healthy()
        with self._mu:
            if self._snapshot_pins:
                self._retain_current_image(META_PAGE_ID)
            self.pagefile.write(META_PAGE_ID, image)
            self.pagefile.sync()
            self._dirty_since_publish = True

    def read_meta(self) -> dict:
        """Load the index metadata dict from the reserved meta page."""
        with self._mu:
            if self._shadow_meta is not None:
                data: bytes = self._shadow_meta
            elif self._pending_meta is not None:
                data = self._pending_meta
            else:
                data = self.pagefile.read(META_PAGE_ID)
        try:
            return unpack_meta(data)
        except Exception as exc:
            raise StorageError(f"meta page is corrupt: {exc}") from exc

    # ------------------------------------------------------------------
    # transactions (WAL-backed durability)
    # ------------------------------------------------------------------

    def begin_txn(self) -> int:
        """Open a WAL transaction; page writes shadow until commit."""
        if self.wal is None:
            raise WALError("node store has no write-ahead log attached")
        self._require_healthy()
        txn_id = self.wal.begin()
        self._shadow.clear()
        self._shadow_meta = None
        self._txn_freed.clear()
        self._txn_allocated.clear()
        return txn_id

    def commit_txn(self) -> None:
        """Make the open transaction durable, then apply it.

        Sequence: flush dirty buffers (their images land in the WAL and
        the shadow table), append COMMIT (the durability point), move
        the shadow into the pending-apply table, and — only if the
        commit fsynced the log (``sync_every`` boundary) — apply every
        pending image and deferred free to the data file, checkpointing
        if the log has outgrown its threshold.  Batched (unsynced)
        commits stay WAL-only until the next fsync boundary, so the
        data file can never hold pages of a transaction whose COMMIT
        record the kernel might not have persisted (the write-ahead
        rule).  A crash after COMMIT but before (or during) the apply
        is exactly what :func:`~repro.storage.wal.recover` repairs on
        reopen.

        A failure *before* the COMMIT record is durable rolls back
        normally; a failure *after* (apply, free, or checkpoint)
        poisons the store — see :attr:`poisoned` — because the
        transaction is already committed and must not be undone in
        memory.
        """
        if not self.in_txn:
            raise WALError("no open transaction")
        self._require_healthy()
        self.buffer.flush()
        try:
            synced = self.wal.commit()
        except BaseException as exc:
            if not self.wal.in_txn:
                # The COMMIT record reached the log before the failure
                # (an fsync error, say): the transaction may already be
                # durable, so an in-memory rollback could diverge from
                # what recovery will replay.  Poison instead.
                self._poison(f"{type(exc).__name__}: {exc}")
            raise
        # -- durability point passed: no in-memory rollback below here.
        # Publish the new committed state atomically with respect to
        # snapshot readers: retain the superseded committed images
        # (keyed at the pre-bump epoch, captured before the pending
        # table or the page file is touched), move the shadow into the
        # pending-apply table, and bump the epoch.
        with self._mu:
            changed = set(self._shadow)
            changed.update(self._txn_freed)
            if self._shadow_meta is not None:
                changed.add(META_PAGE_ID)
            changed.difference_update(self._txn_allocated)
            if self._snapshot_pins:
                for page_id in changed:
                    self._retain_current_image(page_id)
            self._pending.update(self._shadow)
            if self._shadow_meta is not None:
                self._pending_meta = self._shadow_meta
            self._pending_frees.extend(self._txn_freed)
            self._shadow.clear()
            self._shadow_meta = None
            self._txn_freed.clear()
            self._txn_allocated.clear()
            self._epoch += 1
            self._record_epoch_changes(changed)
        try:
            if synced:
                self._apply_pending()
            if self.wal.size() > self.wal.checkpoint_bytes:
                self.checkpoint()  # fsyncs the log, so pending drains too
        except BaseException as exc:
            self._poison(f"{type(exc).__name__}: {exc}")
            raise

    @property
    def _has_pending(self) -> bool:
        return bool(
            self._pending or self._pending_frees
        ) or self._pending_meta is not None

    def _apply_pending(self) -> None:
        """Apply fsync-covered committed images to the data file.

        Only called once the WAL records covering the pending table are
        known durable (commit-with-fsync, :meth:`flush`, checkpoint, or
        close), preserving log-before-data ordering.
        """
        # No retention here: these images belong to already-published
        # epochs, and any older epoch a snapshot still pins was retained
        # at its commit's publish point.  Retaining now would mislabel
        # pre-commit content with the current epoch.
        with self._mu:
            for page_id, image in self._pending.items():
                self.pagefile.write(page_id, image)
            if self._pending_meta is not None:
                self.pagefile.write(META_PAGE_ID, self._pending_meta)
            for page_id in self._pending_frees:
                self.pagefile.free(page_id)
            self._pending.clear()
            self._pending_meta = None
            self._pending_frees.clear()

    def abort_txn(self) -> None:
        """Roll the open transaction back entirely in memory.

        Nothing journaled reaches the data file; dirty buffer frames are
        dropped (not flushed), shadowed images and deferred frees are
        discarded, and pages allocated by the transaction return to the
        free list.  The pending-apply table (earlier *committed*
        transactions awaiting an fsync boundary) is untouched — those
        are durable and must survive the abort.  The caller must
        restore its own counters (root id, height, size) from a
        pre-transaction snapshot.
        """
        if self.wal is not None and self.wal.in_txn:
            self.wal.abort()
        self.buffer.drop()
        if self.page_cache is not None:
            self.page_cache.clear()
        self._shadow.clear()
        self._shadow_meta = None
        self._txn_freed.clear()
        with self._mu:
            # Pages allocated by the aborted transaction never had a
            # committed image, so no retention — just return them.
            for page_id in reversed(self._txn_allocated):
                self.pagefile.free(page_id)
        self._txn_allocated.clear()

    def checkpoint(self) -> None:
        """Drain pending applies, fsync the data file, truncate the WAL.

        Order matters: the log is fsynced first (making every batched
        commit durable), then the pending images reach the data file,
        then the data file is fsynced, and only then is the log
        truncated — at no point can the data file hold pages the
        durable log does not cover, and the log is only dropped once
        the data file no longer needs it.
        """
        if self.wal is None:
            return
        self._require_healthy()
        if self._has_pending:
            self.wal.sync()
            self._apply_pending()
        with self._mu:
            self.pagefile.sync()
        self.wal.truncate()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has completed."""
        return self._closed

    def close(self) -> None:
        """Flush everything and close the backing page file (idempotent).

        A poisoned store closes *without* flushing or checkpointing:
        its in-memory state is suspect and the WAL — which still holds
        every committed transaction — must survive untruncated so the
        next open can replay it into the data file.
        """
        if self._closed:
            return
        if self._poisoned is not None:
            self._closed = True
            if self.wal is not None:
                self.wal.close()
            self.pagefile.close()
            return
        if self.readonly:
            self._closed = True
            self.pagefile.close()
            return
        if self.in_txn:  # a caller died mid-transaction: roll back
            self.abort_txn()
        self.flush()
        if self.wal is not None:
            self.checkpoint()
            self.wal.close()
        self.pagefile.close()
        self._closed = True

    def __enter__(self) -> "NodeStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
