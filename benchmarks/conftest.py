"""Shared machinery for the per-figure benchmark modules.

Every module regenerates one table/figure of the paper: it runs the
corresponding experiment from :mod:`repro.bench.experiments`, archives
the table under ``benchmarks/results/``, prints it, asserts the
qualitative shape the paper reports, and times a representative
operation through pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only

Scale every data set up or down with ``REPRO_BENCH_SCALE`` (default 1;
the paper's original sizes correspond to roughly 10).
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def archive(name: str, title: str, headers, rows) -> str:
    """Format, archive, and print one experiment table."""
    from repro.bench.report import format_table, write_report

    body = format_table(headers, rows)
    text = write_report(os.path.join(RESULTS_DIR, f"{name}.txt"), title, body)
    print(f"\n{text}")
    return text


def by_kind(rows, key_col: int, kind_col: int = 1):
    """Group rows into {kind: {key: row}} for qualitative assertions."""
    table: dict[str, dict] = {}
    for row in rows:
        table.setdefault(row[kind_col], {})[row[key_col]] = row
    return table


@pytest.fixture(scope="session", autouse=True)
def _shared_experiment_caches():
    """Keep experiment caches alive for the whole benchmark session."""
    yield
    from repro.bench.experiments import clear_caches

    clear_caches()
