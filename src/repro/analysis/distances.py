"""Pairwise-distance concentration analysis (paper Figure 17).

The paper explains the failure of every index on high-dimensional
uniform data by the distribution of pairwise distances: as the
dimensionality grows, the minimum distance approaches the maximum
("the ratio of the minimum to the maximum increases up to 24 % in 16
dimensions, 40 % in 32 dimensions, and 53 % in 64 dimensions"), so
every point has similar distances to all others and neighborhoods stop
being meaningful.  :func:`distance_spread` measures exactly those
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.point import as_points, pairwise_distances

__all__ = ["DistanceSpread", "distance_spread"]


@dataclass(frozen=True)
class DistanceSpread:
    """Summary of the pairwise-distance distribution of a point sample."""

    minimum: float
    average: float
    maximum: float

    @property
    def min_to_max_ratio(self) -> float:
        """The paper's concentration measure: min / max (0 when max is 0)."""
        if self.maximum == 0.0:
            return 0.0
        return self.minimum / self.maximum


def distance_spread(
    points, sample: int | None = 2000, seed: int | None = 0
) -> DistanceSpread:
    """Min / average / max pairwise Euclidean distance of a point set.

    All-pairs distances are quadratic in the number of points, so data
    sets larger than ``sample`` are subsampled (deterministically, via
    ``seed``) first; pass ``sample=None`` to force the exact all-pairs
    computation.
    """
    pts = as_points(points)
    if pts.shape[0] < 2:
        raise ValueError("need at least two points to measure distances")
    if sample is not None and pts.shape[0] > sample:
        rng = np.random.default_rng(seed)
        pts = pts[rng.choice(pts.shape[0], size=sample, replace=False)]
    dists = pairwise_distances(pts)
    return DistanceSpread(
        minimum=float(dists.min()),
        average=float(dists.mean()),
        maximum=float(dists.max()),
    )
