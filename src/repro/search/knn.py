"""Depth-first branch-and-bound k-nearest-neighbor search.

This is the algorithm of Roussopoulos, Kelley and Vincent ("Nearest
Neighbor Queries", SIGMOD 1995), which the paper uses for every index
structure (Section 4.4):

1. traverse the tree depth-first, visiting children in order of their
   MINDIST from the query point (the *active branch list*);
2. maintain the ``k`` best candidates found so far in a max-heap;
3. prune any subtree whose MINDIST exceeds the current ``k``-th best
   distance.

The only index-specific ingredient is the MINDIST from a point to a
child region, supplied by ``index.child_mindists`` — rectangles for the
R*-tree family, spheres for the SS-tree, and the combined
``max(sphere, rect)`` bound for the SR-tree.

Distance computations are tallied into the index's
:class:`~repro.storage.stats.IOStats` as a machine-independent CPU-cost
proxy; physical page reads are counted by the node store itself.

**Tracing cost.**  Each algorithm reads ``trace.active`` exactly once
per query and dispatches to either an untraced fast path (no span
branches anywhere in the per-node loops) or a traced twin that records
visit/prune/queue events.  The price is a second small code path per
algorithm; the payoff is that the overwhelmingly common untraced query
pays a single branch, not one per node and child.
"""

from __future__ import annotations

import heapq
from itertools import count

import numpy as np

from ..indexes.base import Neighbor
from ..obs.tracer import trace

__all__ = ["knn_search", "knn_search_best_first", "KnnCandidates"]


class KnnCandidates:
    """A bounded max-heap of the best ``k`` candidates seen so far."""

    def __init__(self, k: int) -> None:
        self.k = k
        # Heap items are (-distance, tiebreak, point, value): heapq is a
        # min-heap, so the worst candidate sits at index 0.
        self._heap: list[tuple[float, int, np.ndarray, object]] = []
        self._tiebreak = count()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def bound(self) -> float:
        """Current pruning distance: the k-th best, or +inf while filling."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    def offer(self, distance: float, point: np.ndarray, value: object) -> None:
        """Consider one candidate.

        The reject path — by far the most common once the heap is full —
        reads the bound once and returns without allocating the heap
        tuple or drawing a tiebreak number.
        """
        heap = self._heap
        if len(heap) < self.k:
            heapq.heappush(heap, (-distance, next(self._tiebreak), point, value))
            return
        if distance >= -heap[0][0]:
            return
        heapq.heapreplace(heap, (-distance, next(self._tiebreak), point, value))

    def offer_batch(self, distances: np.ndarray, points: np.ndarray, values) -> None:
        """Consider a leaf's worth of candidates at once.

        Candidates are taken in ascending distance order, so the first
        one at or beyond the bound ends the leaf: everything after it in
        the sorted order is rejected wholesale without per-candidate
        bound reads or tuple allocation.
        """
        heap = self._heap
        tiebreak = self._tiebreak
        order = np.argsort(distances, kind="stable")
        n = order.shape[0]
        pos = 0
        fill = self.k - len(heap)
        while fill > 0 and pos < n:
            i = order[pos]
            heapq.heappush(
                heap,
                (-float(distances[i]), next(tiebreak), points[i].copy(), values[i]),
            )
            pos += 1
            fill -= 1
        if pos >= n:
            return
        bound = -heap[0][0]
        for i in order[pos:]:
            d = float(distances[i])
            if d >= bound:
                break
            heapq.heapreplace(
                heap, (-d, next(tiebreak), points[i].copy(), values[i])
            )
            bound = -heap[0][0]

    def results(self) -> list[Neighbor]:
        """The candidates as :class:`Neighbor` objects, closest first."""
        ordered = sorted(self._heap, key=lambda item: (-item[0], item[1]))
        return [Neighbor(-d, point, value) for d, _, point, value in ordered]


# ----------------------------------------------------------------------
# depth-first branch-and-bound
# ----------------------------------------------------------------------


def knn_search(index, point: np.ndarray, k: int) -> list[Neighbor]:
    """Find the ``k`` nearest points to ``point`` in ``index``.

    Returns at most ``k`` :class:`Neighbor` results sorted by ascending
    distance (fewer when the index holds fewer than ``k`` points).
    """
    candidates = KnnCandidates(k)
    stats = index.stats
    span = trace.active
    if span is None:
        _visit(index, index.root_id, point, candidates, stats)
    else:
        span.visit(index.root_id, index.height - 1, 0.0)
        _visit_traced(index, index.root_id, point, candidates, stats, span)
    return candidates.results()


def _scan_leaf(node, point, candidates, stats) -> None:
    if node.count == 0:
        return
    pts = node.points[: node.count]
    diff = pts - point
    dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    stats.distance_computations += node.count
    candidates.offer_batch(dists, pts, node.values)


def _visit(index, page_id: int, point: np.ndarray, candidates: KnnCandidates,
           stats) -> None:
    """Untraced fast path: zero tracing branches in the hot loop."""
    node = index.read_node(page_id)
    if node.is_leaf:
        _scan_leaf(node, point, candidates, stats)
        return
    dists = index.child_mindists(node, point)
    stats.distance_computations += node.count
    child_ids = node.child_ids
    for i in np.argsort(dists, kind="stable"):
        # Children are visited in MINDIST order, so once one exceeds the
        # current bound every later one does too.
        if dists[i] > candidates.bound:
            break
        _visit(index, int(child_ids[i]), point, candidates, stats)


def _visit_traced(index, page_id: int, point: np.ndarray,
                  candidates: KnnCandidates, stats, span) -> None:
    """Traced twin of :func:`_visit`: records visit/prune events."""
    node = index.read_node(page_id)
    if node.is_leaf:
        _scan_leaf(node, point, candidates, stats)
        return
    dists = index.child_mindists(node, point)
    stats.distance_computations += node.count
    order = np.argsort(dists, kind="stable")
    for pos, i in enumerate(order):
        if dists[i] > candidates.bound:
            bound = candidates.bound
            for j in order[pos:]:
                span.prune(int(node.child_ids[j]), node.level - 1,
                           float(dists[j]), bound)
            break
        span.visit(int(node.child_ids[i]), node.level - 1, float(dists[i]),
                   candidates.bound)
        _visit_traced(index, int(node.child_ids[i]), point, candidates, stats,
                      span)


# ----------------------------------------------------------------------
# best-first (Hjaltason & Samet)
# ----------------------------------------------------------------------


def knn_search_best_first(index, point: np.ndarray, k: int) -> list[Neighbor]:
    """Best-first k-NN (Hjaltason & Samet's incremental algorithm).

    An extension beyond the paper: instead of the depth-first traversal
    of Roussopoulos et al. (which the paper uses, and which
    :func:`knn_search` implements), maintain one global priority queue
    of subtrees ordered by MINDIST and always expand the closest.  This
    is *I/O-optimal* for a given tree — it reads exactly the pages whose
    region MINDIST is below the k-th-neighbor distance — so it lower
    bounds the reads of any correct traversal and makes a good ablation
    reference (``benchmarks/test_ablation_search_algorithm.py``).

    Returns the same results as :func:`knn_search`.
    """
    candidates = KnnCandidates(k)
    span = trace.active
    if span is None:
        _best_first(index, point, candidates)
    else:
        _best_first_traced(index, point, candidates, span)
    return candidates.results()


def _best_first(index, point: np.ndarray, candidates: KnnCandidates) -> None:
    """Untraced fast path of the best-first traversal."""
    stats = index.stats
    tiebreak = count()
    # Queue items: (mindist, tiebreak, page_id).
    queue: list[tuple[float, int, int]] = [(0.0, next(tiebreak), index.root_id)]
    while queue:
        dist, _, page_id = heapq.heappop(queue)
        if dist > candidates.bound:
            # Every remaining subtree is farther than the k-th best.
            break
        node = index.read_node(page_id)
        if node.is_leaf:
            _scan_leaf(node, point, candidates, stats)
            continue
        child_dists = index.child_mindists(node, point)
        stats.distance_computations += node.count
        bound = candidates.bound
        child_ids = node.child_ids
        for i in range(node.count):
            if child_dists[i] <= bound:
                heapq.heappush(
                    queue,
                    (float(child_dists[i]), next(tiebreak), int(child_ids[i])),
                )


def _best_first_traced(index, point: np.ndarray, candidates: KnnCandidates,
                       span) -> None:
    """Traced twin of :func:`_best_first`."""
    stats = index.stats
    tiebreak = count()
    # Page-id -> level side table so queue leftovers can be attributed
    # to their tree level at prune time.
    levels: dict[int, int] = {index.root_id: index.height - 1}
    queue: list[tuple[float, int, int]] = [(0.0, next(tiebreak), index.root_id)]
    while queue:
        dist, _, page_id = heapq.heappop(queue)
        if dist > candidates.bound:
            span.prune(page_id, levels.get(page_id, -1), dist, candidates.bound)
            for leftover_dist, _, leftover_id in queue:
                span.prune(leftover_id, levels.get(leftover_id, -1),
                           leftover_dist, candidates.bound)
            break
        node = index.read_node(page_id)
        span.visit(page_id, node.level, dist, candidates.bound)
        span.queue(len(queue), popped=1)
        if node.is_leaf:
            _scan_leaf(node, point, candidates, stats)
            continue
        child_dists = index.child_mindists(node, point)
        stats.distance_computations += node.count
        bound = candidates.bound
        for i in range(node.count):
            if child_dists[i] <= bound:
                child_id = int(node.child_ids[i])
                heapq.heappush(
                    queue,
                    (float(child_dists[i]), next(tiebreak), child_id),
                )
                levels[child_id] = node.level - 1
                span.queue(len(queue), pushed=1)
            else:
                span.prune(int(node.child_ids[i]), node.level - 1,
                           float(child_dists[i]), bound)
