"""Raw page-image cache: the tier between the buffer pool and the disk.

The cache hierarchy, top to bottom::

    BufferPool   — live decoded node objects (LRU over frames)
    PageCache    — raw *encoded* node images  (LRU over bytes)   <- here
    PageFile     — the disk (or its in-memory stand-in)

A :class:`PageCache` hit skips the physical page transfer but still pays
the (cheap, zero-copy) decode; it is what makes a second worker's cold
buffer pool inexpensive when the working set already streamed through
the process once.  Entries are keyed by a node's *head* page id and hold
the node's **complete** image — for an X-tree-style supernode that is
the head page plus every continuation page, already assembled.  Hits are
therefore all-or-nothing, which keeps the EXPLAIN accounting invariant
(`span.pages_read == IOStats.page_reads` delta) intact: a hit transfers
zero pages, a miss transfers ``extent`` pages.

Capacity is measured in *pages* (extent-weighted), mirroring how the
paper counts disk transfers.  A capacity of 0 disables the cache; the
:class:`~repro.storage.store.NodeStore` then skips it entirely, so the
default configuration is byte-for-byte identical to the pre-cache
behavior (the benchmark harness depends on exact read counts).

The cache is deliberately tiny in mechanism: an ``OrderedDict`` LRU with
hit/miss counters folded into the shared :class:`~repro.storage.stats.IOStats`
bundle.  Write paths must :meth:`invalidate` the head page id whenever a
node is dirtied or freed — the node store does this for every
``write()`` / ``free()``.
"""

from __future__ import annotations

from collections import OrderedDict

from .stats import IOStats

__all__ = ["PageCache"]


class PageCache:
    """LRU cache of fully-assembled encoded node images.

    Parameters
    ----------
    capacity_pages:
        Maximum total extent (in pages) of the cached images; must be
        positive.  Construct the cache only when it is wanted — the node
        store represents "disabled" as ``None``, not as a zero-capacity
        cache.
    stats:
        Shared counter bundle receiving ``page_cache_hits`` /
        ``page_cache_misses``.
    """

    __slots__ = ("capacity_pages", "stats", "_entries", "_used_pages")

    def __init__(self, capacity_pages: int, stats: IOStats | None = None) -> None:
        if capacity_pages <= 0:
            raise ValueError(
                f"page cache capacity must be positive, got {capacity_pages}"
            )
        self.capacity_pages = capacity_pages
        self.stats = stats if stats is not None else IOStats()
        #: head page id -> (image bytes, extent in pages), LRU order.
        self._entries: OrderedDict[int, tuple[bytes, int]] = OrderedDict()
        self._used_pages = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_pages(self) -> int:
        """Total extent of the cached images, in pages."""
        return self._used_pages

    def get(self, page_id: int) -> bytes | None:
        """The cached image for ``page_id``, or ``None``; counts hit/miss."""
        entry = self._entries.get(page_id)
        if entry is None:
            self.stats.page_cache_misses += 1
            return None
        self._entries.move_to_end(page_id)
        self.stats.page_cache_hits += 1
        return entry[0]

    def put(self, page_id: int, image: bytes, extent: int) -> None:
        """Insert (or refresh) the complete image of a node.

        Images wider than the whole cache are not admitted — evicting
        everything to hold one supernode would thrash the cache.
        """
        if extent > self.capacity_pages:
            return
        old = self._entries.pop(page_id, None)
        if old is not None:
            self._used_pages -= old[1]
        self._entries[page_id] = (image, extent)
        self._used_pages += extent
        while self._used_pages > self.capacity_pages:
            _, (_, evicted_extent) = self._entries.popitem(last=False)
            self._used_pages -= evicted_extent

    def invalidate(self, page_id: int) -> None:
        """Drop the entry for ``page_id`` (no-op when absent)."""
        old = self._entries.pop(page_id, None)
        if old is not None:
            self._used_pages -= old[1]

    def clear(self) -> None:
        """Drop every entry (counters are left alone)."""
        self._entries.clear()
        self._used_pages = 0

    def __repr__(self) -> str:
        return (
            f"PageCache(entries={len(self._entries)}, "
            f"pages={self._used_pages}/{self.capacity_pages})"
        )
