"""Table 1: maximum number of entries in a node and in a leaf.

Paper expectation (Section 3.1 / 5.3, D=16, 8 KiB pages, 512 B data
area): every point index holds 12 leaf entries; node capacities are
about 56 (SS), 31 (R*/K-D-B/VAMSplit) and 20 (SR) — the SR-tree's
fanout is one third of the SS-tree's and two thirds of the R*-tree's.
"""

from conftest import archive

from repro.bench.experiments import fanout_experiment
from repro.indexes import INDEX_KINDS


def test_table1_fanout(benchmark):
    headers, rows = fanout_experiment(dims_list=[8, 16, 32, 64])
    archive("table1_fanout", "Table 1: node/leaf capacities", headers, rows)

    caps = {row[0]: row for row in rows}
    d16_node = {kind: caps[kind][2] for kind in caps}  # node D=16 column
    d16_leaf = {kind: caps[kind][6] for kind in caps}  # leaf D=16 column

    # Paper values at D=16.
    assert d16_node["srtree"] == 20
    assert d16_node["sstree"] == 56
    assert d16_node["rstar"] == 31
    assert d16_node["kdb"] == 31
    assert d16_node["vamsplit"] == 31
    assert all(leaf == 12 for leaf in d16_leaf.values())

    # Section 5.3 fanout ratios.
    assert abs(d16_node["srtree"] - d16_node["sstree"] / 3) <= 2
    assert abs(d16_node["srtree"] - 2 * d16_node["rstar"] / 3) <= 2

    benchmark(lambda: [INDEX_KINDS[k](16).node_capacity for k in INDEX_KINDS
                       if k != "linear"])
