"""Tests for the best-first k-NN extension (Hjaltason & Samet)."""

import numpy as np
import pytest

from repro.indexes import INDEX_KINDS, build_index

from tests.helpers import brute_force_knn

TREE_KINDS = [k for k in sorted(INDEX_KINDS) if k != "linear"]


@pytest.fixture(scope="module")
def cloud():
    return np.random.default_rng(31337).random((500, 8))


@pytest.mark.parametrize("kind", TREE_KINDS)
class TestBestFirst:
    def test_matches_brute_force(self, kind, cloud):
        index = build_index(kind, cloud)
        rng = np.random.default_rng(1)
        for _ in range(8):
            q = rng.random(8)
            got = [n.value for n in index.nearest(q, 9, algorithm="best-first")]
            assert got == brute_force_knn(cloud, q, 9)

    def test_agrees_with_depth_first(self, kind, cloud):
        index = build_index(kind, cloud)
        q = cloud[42]
        dfs = [n.value for n in index.nearest(q, 21, algorithm="depth-first")]
        bfs = [n.value for n in index.nearest(q, 21, algorithm="best-first")]
        assert dfs == bfs

    def test_never_reads_more_pages(self, kind, cloud):
        # Best-first is I/O-optimal: for the same tree and query it can
        # only read fewer-or-equal pages than the depth-first traversal.
        index = build_index(kind, cloud)
        rng = np.random.default_rng(2)
        for _ in range(5):
            q = rng.random(8)
            index.store.drop_cache()
            before = index.stats.snapshot()
            index.nearest(q, 11, algorithm="depth-first")
            dfs_reads = index.stats.since(before).page_reads

            index.store.drop_cache()
            before = index.stats.snapshot()
            index.nearest(q, 11, algorithm="best-first")
            bfs_reads = index.stats.since(before).page_reads
            assert bfs_reads <= dfs_reads


class TestAlgorithmSelection:
    def test_unknown_algorithm_rejected(self, cloud):
        index = build_index("srtree", cloud)
        with pytest.raises(ValueError, match="unknown algorithm"):
            index.nearest(cloud[0], 1, algorithm="magic")

    def test_k_larger_than_size(self, cloud):
        index = build_index("srtree", cloud)
        res = index.nearest(cloud[0], k=1000, algorithm="best-first")
        assert len(res) == len(cloud)
        dists = [n.distance for n in res]
        assert dists == sorted(dists)
