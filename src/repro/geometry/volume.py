"""Volume computations for high-dimensional regions.

Hyper-rectangle and hyper-sphere volumes underflow or overflow float64
quickly as the dimensionality grows (the unit-ball volume at D = 64 is
about 1e-27, and a bounding sphere of radius 2 at D = 64 has volume
2**64 times that).  The analysis code therefore works in the log domain;
this module provides both linear and log-domain helpers.

The volume of a D-ball of radius ``r`` is::

    V(D, r) = pi**(D/2) / Gamma(D/2 + 1) * r**D

which we evaluate via ``math.lgamma`` for numerical stability.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "log_unit_ball_volume",
    "unit_ball_volume",
    "log_sphere_volume",
    "sphere_volume",
    "log_rect_volume",
    "rect_volume",
]


def log_unit_ball_volume(dims: int) -> float:
    """Natural log of the volume of the unit ball in ``dims`` dimensions."""
    if dims < 0:
        raise ValueError(f"dimensionality must be non-negative, got {dims}")
    if dims == 0:
        return 0.0  # the 0-ball is a point with "volume" 1 by convention
    return 0.5 * dims * math.log(math.pi) - math.lgamma(0.5 * dims + 1.0)


def unit_ball_volume(dims: int) -> float:
    """Volume of the unit ball in ``dims`` dimensions."""
    return math.exp(log_unit_ball_volume(dims))


def log_sphere_volume(dims: int, radius: float) -> float:
    """Natural log of the volume of a ``dims``-ball of the given radius.

    Returns ``-inf`` for a degenerate (zero-radius) sphere, matching the
    convention that a point has zero volume.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if radius == 0.0:
        return -math.inf
    return log_unit_ball_volume(dims) + dims * math.log(radius)


def sphere_volume(dims: int, radius: float) -> float:
    """Volume of a ``dims``-ball of the given radius."""
    log_vol = log_sphere_volume(dims, radius)
    return 0.0 if log_vol == -math.inf else math.exp(log_vol)


def log_rect_volume(low, high) -> float:
    """Natural log of the volume of an axis-aligned box.

    ``low`` and ``high`` are the per-dimension bounds.  Any degenerate
    dimension (``high == low``) makes the volume zero, returned as
    ``-inf``.
    """
    extents = np.asarray(high, dtype=np.float64) - np.asarray(low, dtype=np.float64)
    if np.any(extents < 0):
        raise ValueError("rectangle has high < low on some dimension")
    if np.any(extents == 0):
        return -math.inf
    return float(np.sum(np.log(extents)))


def rect_volume(low, high) -> float:
    """Volume of an axis-aligned box with the given bounds."""
    log_vol = log_rect_volume(low, high)
    return 0.0 if log_vol == -math.inf else math.exp(log_vol)
