# Convenience targets for development and reproduction runs.

.PHONY: install test bench examples all

# `pip install -e .` needs the `wheel` package for PEP 517 editable
# builds; offline environments fall back to the legacy setuptools path.
install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Approach the paper's original data-set sizes (slow).
bench-paper-scale:
	REPRO_BENCH_SCALE=10 pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/spatial_queries.py
	python examples/persistence.py
	python examples/cluster_analysis.py
	python examples/image_retrieval.py
	python examples/index_shootout.py

all: install test bench
