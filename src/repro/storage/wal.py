"""Physical write-ahead log: crash-safe page and meta updates.

The SR-tree is a *dynamic, disk-based* index, and a single insert
mutates several pages (leaf, split sibling, every ancestor, the meta
page holding the root pointer).  A crash between any two of those page
writes leaves the file torn: a parent pointing at a child that was never
written, a root pointer into a half-updated tree.  The WAL closes that
window with classic physical redo logging:

1. during a transaction every page image is appended to the log — the
   data file is **not** touched;
2. ``commit`` appends a COMMIT record (``fsync`` according to the
   batching policy) — this is the durability point;
3. only then are the images applied to the data file;
4. on reopen, :func:`recover` replays every *committed* transaction's
   images into the data file (pure redo — replay is idempotent) and
   discards the torn tail after the last intact record.

Uncommitted transactions never reach the data file, so recovery needs no
undo pass.  A checkpoint (automatic once the log exceeds
``checkpoint_bytes``, and on ``close``) fsyncs the data file and
truncates the log.

The durability point of step 2 is also the store's *publish* point for
snapshot isolation: ``NodeStore.commit_txn`` bumps the committed epoch
there, in the same locked section that swaps the transaction's shadow
pages into the committed pending-apply table — which is why an
epoch-pinned reader sees either all of a transaction or none of it
(``docs/CONCURRENCY.md``).

Record format (little endian)::

    +--------+------+---------+-------------+-------+-----------+
    | magic  | type | txn id  | payload len | CRC32 | payload   |
    | u32    | u8   | u64     | u32         | u32   | ...       |
    +--------+------+---------+-------------+-------+-----------+

``CRC32`` covers type, txn id, and payload, so a torn append (or a bit
flip) invalidates the record and everything after it.  PAGE payloads are
``page_id (u32) + page image``; META payloads are the raw meta-page
image; BEGIN/COMMIT have empty payloads.

**fsync batching.**  ``sync_every=1`` (default) fsyncs on every commit —
every acknowledged insert survives an OS crash.  ``sync_every=N`` fsyncs
every Nth commit: process crashes lose nothing (the OS has the bytes),
OS crashes may lose up to the last N-1 acknowledged transactions, and
insert throughput rises accordingly.  :meth:`WriteAheadLog.commit`
returns whether it fsynced so callers can honour the write-ahead rule:
a batched (unsynced) commit must stay WAL-only — its images may reach
the data file only once a later commit, :meth:`WriteAheadLog.sync`, or
checkpoint has made the covering log records durable.  Otherwise the
kernel could persist data-file pages *before* the COMMIT record, and
recovery (which discards the torn log tail) would leave a partially
applied transaction in the data file — structural corruption that page
checksums cannot see.  :class:`~repro.storage.store.NodeStore`
implements this by parking batched commits in a pending-apply table.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field

from ..exceptions import WALError
from .constants import META_PAGE_ID
from .pagefile import PageFile

__all__ = ["RecoveryReport", "WriteAheadLog", "open_wal", "recover", "scan_wal"]

_RECORD = struct.Struct("<IBQII")
_MAGIC = 0x57414C31  # "WAL1"

REC_BEGIN = 1
REC_PAGE = 2
REC_META = 3
REC_COMMIT = 4

_PAGE_ID = struct.Struct("<I")


@dataclass
class _Txn:
    """One committed transaction as reconstructed by :func:`scan_wal`."""

    txn_id: int
    pages: dict[int, bytes] = field(default_factory=dict)
    meta: bytes | None = None


@dataclass
class RecoveryReport:
    """What a recovery pass found and did."""

    committed_txns: int = 0
    replayed_pages: int = 0
    replayed_meta: bool = False
    discarded_txns: int = 0
    discarded_bytes: int = 0
    last_txn_id: int = 0

    def __str__(self) -> str:
        return (
            f"recovered {self.committed_txns} committed txn(s) "
            f"({self.replayed_pages} page image(s)"
            f"{', meta' if self.replayed_meta else ''}), discarded "
            f"{self.discarded_txns} uncommitted txn(s) and "
            f"{self.discarded_bytes} torn tail byte(s)"
        )


class WriteAheadLog:
    """Append-only physical redo log for one page file.

    Parameters
    ----------
    path:
        Log file path (conventionally ``<data file> + ".wal"``).
    sync_every:
        Fsync the log on every Nth commit (see module docstring).
    checkpoint_bytes:
        Auto-checkpoint threshold checked by the node store after each
        applied commit; the log is truncated once it grows past this.
    fault_plan:
        Optional :class:`~repro.storage.faults.FaultPlan` sharing the
        crash-test write budget with the data file, so the kill harness
        can die mid-log-append too.
    """

    def __init__(self, path, *, sync_every: int = 1,
                 checkpoint_bytes: int = 16 * 1024 * 1024,
                 fault_plan=None) -> None:
        if sync_every < 1:
            raise ValueError(f"sync_every must be >= 1, got {sync_every}")
        self._path = os.fspath(path)
        self._file = open(self._path, "ab")
        self._sync_every = sync_every
        self._commits_since_sync = 0
        self.checkpoint_bytes = checkpoint_bytes
        self._fault_plan = fault_plan
        self._txn_id = 0
        self._in_txn = False
        self._records_in_txn = 0
        self._closed = False

    # ------------------------------------------------------------------

    @property
    def path(self) -> str:
        """Filesystem path of the log file."""
        return self._path

    @property
    def in_txn(self) -> bool:
        """Whether a transaction is currently open."""
        return self._in_txn

    @property
    def records_in_txn(self) -> int:
        """Records appended by the open transaction (0 outside one)."""
        return self._records_in_txn

    def size(self) -> int:
        """Current log size in bytes."""
        self._file.flush()
        return os.path.getsize(self._path)

    # ------------------------------------------------------------------
    # logging
    # ------------------------------------------------------------------

    def begin(self) -> int:
        """Open a transaction; returns its id."""
        if self._in_txn:
            raise WALError("transaction already open")
        self._txn_id += 1
        self._in_txn = True
        self._records_in_txn = 0
        self._append(REC_BEGIN, self._txn_id, b"")
        return self._txn_id

    def log_page(self, page_id: int, image: bytes) -> None:
        """Journal the after-image of one page."""
        self._require_txn()
        self._append(REC_PAGE, self._txn_id, _PAGE_ID.pack(page_id) + image)

    def log_meta(self, image: bytes) -> None:
        """Journal the after-image of the meta page."""
        self._require_txn()
        self._append(REC_META, self._txn_id, bytes(image))

    def commit(self) -> bool:
        """Append the COMMIT record; fsync per the batching policy.

        Returns ``True`` when the log was fsynced — this transaction
        (and every batched one before it) is now durable against OS
        crashes, so its images may be applied to the data file.
        Returns ``False`` for a batched commit that is riding a later
        fsync: the record is flushed (safe against *process* crashes)
        but callers must keep the transaction WAL-only until a commit
        that returns ``True``, :meth:`sync`, or a checkpoint covers it,
        or the data file could run ahead of the durable log (the
        write-ahead rule).
        """
        self._require_txn()
        self._append(REC_COMMIT, self._txn_id, b"")
        self._in_txn = False
        self._records_in_txn = 0
        self._commits_since_sync += 1
        self._file.flush()
        synced = self._commits_since_sync >= self._sync_every
        if synced:
            os.fsync(self._file.fileno())
            self._commits_since_sync = 0
        from ..obs.hooks import on_wal_commit

        on_wal_commit(txn_id=self._txn_id, synced=synced)
        return synced

    def abort(self) -> None:
        """Drop the open transaction (its records are never committed)."""
        self._in_txn = False
        self._records_in_txn = 0

    def _require_txn(self) -> None:
        if not self._in_txn:
            raise WALError("no open transaction")

    def _append(self, rec_type: int, txn_id: int, payload: bytes) -> None:
        crc = _record_crc(rec_type, txn_id, payload)
        record = _RECORD.pack(_MAGIC, rec_type, txn_id, len(payload), crc) + payload
        plan = self._fault_plan
        if plan is not None:
            allowed = plan.take_write_budget(len(record))
            if allowed < len(record):
                # Simulated death mid-append: a torn log record.
                self._file.write(record[:allowed])
                self._file.flush()
                plan.die("WAL append")
        self._file.write(record)
        self._records_in_txn += 1

    # ------------------------------------------------------------------
    # checkpointing / lifecycle
    # ------------------------------------------------------------------

    def truncate(self) -> None:
        """Empty the log (caller must have fsynced the data file first)."""
        self._file.truncate(0)
        self._file.seek(0)
        self._file.flush()
        os.fsync(self._file.fileno())
        self._commits_since_sync = 0

    def sync(self) -> None:
        """Force an fsync regardless of the batching policy."""
        self._file.flush()
        os.fsync(self._file.fileno())
        self._commits_since_sync = 0

    def close(self) -> None:
        """Flush and close the log file (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _record_crc(rec_type: int, txn_id: int, payload: bytes) -> int:
    crc = zlib.crc32(bytes((rec_type,)))
    crc = zlib.crc32(txn_id.to_bytes(8, "little"), crc)
    return zlib.crc32(payload, crc) & 0xFFFFFFFF


def scan_wal(path) -> tuple[list[_Txn], RecoveryReport]:
    """Parse a log file into its committed transactions.

    Walks records from the start, stopping at the first torn or corrupt
    record (everything after it is unreachable tail, by construction —
    records are appended strictly in order).  Transactions with no
    COMMIT record by the time the scan stops are discarded.  Returns the
    committed transactions in commit order plus a report; the report's
    ``last_txn_id`` covers *every* txn id seen, so a re-opened WAL can
    continue the id sequence without collisions.
    """
    report = RecoveryReport()
    committed: list[_Txn] = []
    open_txns: dict[int, _Txn] = {}
    size = os.path.getsize(path)
    with open(path, "rb") as handle:
        data = handle.read()
    pos = 0
    header_size = _RECORD.size
    while pos + header_size <= size:
        magic, rec_type, txn_id, length, crc = _RECORD.unpack_from(data, pos)
        if magic != _MAGIC:
            break
        end = pos + header_size + length
        if end > size:
            break  # torn payload
        payload = data[pos + header_size : end]
        if _record_crc(rec_type, txn_id, payload) != crc:
            break  # bit flip or torn header
        report.last_txn_id = max(report.last_txn_id, txn_id)
        if rec_type == REC_BEGIN:
            open_txns[txn_id] = _Txn(txn_id)
        elif rec_type == REC_PAGE:
            txn = open_txns.get(txn_id)
            if txn is not None:
                (page_id,) = _PAGE_ID.unpack_from(payload)
                txn.pages[page_id] = payload[_PAGE_ID.size :]
        elif rec_type == REC_META:
            txn = open_txns.get(txn_id)
            if txn is not None:
                txn.meta = payload
        elif rec_type == REC_COMMIT:
            txn = open_txns.pop(txn_id, None)
            if txn is not None:
                committed.append(txn)
        else:
            break  # unknown record type: treat as corruption
        pos = end
    report.committed_txns = len(committed)
    report.discarded_txns = len(open_txns)
    report.discarded_bytes = size - pos
    return committed, report


def recover(pagefile: PageFile, wal_path, *, truncate: bool = True) -> RecoveryReport:
    """Replay every committed WAL transaction into ``pagefile``.

    Pure redo: page images are rewritten in commit order, so replaying a
    log twice (or replaying transactions whose images already reached
    the data file) converges to the same bytes — asserted by
    ``tests/test_wal.py``.  The data file is fsynced before the log is
    truncated, closing the crash-during-recovery window.

    ``pagefile`` must be the *logical* page stack (checksummed when the
    file is), so replayed images are re-sealed on the way down.
    """
    if not os.path.exists(wal_path):
        return RecoveryReport()
    committed, report = scan_wal(wal_path)
    for txn in committed:
        for page_id, image in txn.pages.items():
            if len(image) > pagefile.page_size:
                raise WALError(
                    f"WAL page image for page {page_id} is {len(image)} bytes, "
                    f"page size is {pagefile.page_size}"
                )
            pagefile.ensure_allocated(page_id)
            pagefile.write(page_id, image)
            report.replayed_pages += 1
        if txn.meta is not None:
            pagefile.ensure_allocated(META_PAGE_ID)
            pagefile.write(META_PAGE_ID, txn.meta)
            report.replayed_meta = True
    pagefile.sync()
    if truncate and (committed or report.discarded_bytes or report.discarded_txns):
        # Truncation resets the txn-id sequence: a WAL opened afterwards
        # rescans an empty file and restarts ids at 1.  That is safe —
        # the ids only disambiguate records *within* one log, and the
        # log is now empty — but it does mean ids are not monotonic
        # across checkpoints.
        with open(wal_path, "r+b") as handle:
            handle.truncate(0)
            handle.flush()
            os.fsync(handle.fileno())
    from ..obs.hooks import on_wal_recovery

    on_wal_recovery(report.committed_txns)
    return report


def open_wal(path, *, sync_every: int = 1, fault_plan=None,
             checkpoint_bytes: int = 16 * 1024 * 1024) -> WriteAheadLog:
    """Open a WAL for appending, continuing the txn-id sequence.

    The caller is expected to have run :func:`recover` first (the log is
    normally empty here); any surviving records are scanned so fresh
    transactions get ids strictly above everything already on disk.
    """
    wal = WriteAheadLog(path, sync_every=sync_every, fault_plan=fault_plan,
                        checkpoint_bytes=checkpoint_bytes)
    if os.path.getsize(path):
        _, report = scan_wal(path)
        wal._txn_id = report.last_txn_id
    return wal
