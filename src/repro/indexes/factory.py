"""Index registry used by the benchmark harness and the examples.

Maps the short names the paper uses in its figures to the index
classes, and provides a uniform "build an index over this data set"
entry point that hides the static/dynamic construction difference.
"""

from __future__ import annotations

import time

import numpy as np

from ..obs.hooks import on_build
from .base import SpatialIndex
from .kdb import KDBTree
from .linear import LinearScan
from .rstar import RStarTree
from .rtree import RTree
from .srtree import SRTree
from .srx import SRXTree
from .sstree import SSTree
from .vamsplit import VAMSplitRTree

__all__ = ["INDEX_KINDS", "make_index", "build_index", "open_index"]

INDEX_KINDS: dict[str, type[SpatialIndex]] = {
    RTree.NAME: RTree,
    RStarTree.NAME: RStarTree,
    SSTree.NAME: SSTree,
    SRTree.NAME: SRTree,
    SRXTree.NAME: SRXTree,
    KDBTree.NAME: KDBTree,
    VAMSplitRTree.NAME: VAMSplitRTree,
    LinearScan.NAME: LinearScan,
}
"""Registry of every index family, keyed by its short name."""


def make_index(kind: str, dims: int, **kwargs) -> SpatialIndex:
    """Instantiate an empty index of the given kind.

    ``kind`` is one of ``rstar``, ``sstree``, ``srtree``, ``kdb``,
    ``vamsplit``, or ``linear``; remaining keyword arguments are passed
    to the index constructor (page size, buffer capacity, ...).
    """
    try:
        cls = INDEX_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown index kind {kind!r}; choose from {sorted(INDEX_KINDS)}"
        ) from None
    return cls(dims, **kwargs)


def build_index(kind: str, points, values=None, **kwargs) -> SpatialIndex:
    """Build an index of the given kind over a complete data set.

    Dynamic indexes insert the points one by one (as the paper's
    experiments do); the static VAMSplit R-tree bulk-loads them.
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("expected an (N, D) array of points")
    index = make_index(kind, points.shape[1], **kwargs)
    start = time.perf_counter()
    if isinstance(index, VAMSplitRTree):
        index.build(points, values)
    else:
        index.load(points, values)
    on_build(index, points.shape[0], time.perf_counter() - start)
    return index


def open_index(path, buffer_capacity: int | None = None,
               page_cache_capacity: int = 0) -> SpatialIndex:
    """Re-open a saved index from a page file on disk.

    The index kind is read from the file's meta page, so callers do not
    need to know which class wrote it.  ``page_cache_capacity`` (pages,
    0 = off) enables the raw-image cache below the buffer pool.
    """
    from ..storage import DEFAULT_BUFFER_CAPACITY, FilePageFile, NodeLayout, NodeStore

    pagefile = FilePageFile(path, create=False)
    probe = NodeLayout(dims=1, has_rects=True, has_spheres=False,
                       has_weights=False, page_size=pagefile.page_size)
    meta = NodeStore(probe, pagefile).read_meta()
    if meta["page_size"] != pagefile.page_size:
        # The file was written with a non-default page size; reopen with
        # the right geometry (the meta pickle is short enough to decode
        # regardless of the probe's page size).
        pagefile.close()
        pagefile = FilePageFile(path, page_size=meta["page_size"], create=False)
    try:
        cls = INDEX_KINDS[meta["index"]]
    except KeyError:
        raise ValueError(f"file holds an unknown index kind {meta['index']!r}") from None
    capacity = buffer_capacity if buffer_capacity else DEFAULT_BUFFER_CAPACITY
    return cls.open(pagefile, buffer_capacity=capacity,
                    page_cache_capacity=page_cache_capacity)
