"""LRU buffer pool.

The buffer pool sits between the trees and the page file.  It caches
*deserialized node objects* keyed by page id (a real DBMS buffer caches
raw frames, but its pages are directly usable in place; caching the
decoded object models the same thing without re-decoding on every hit).

Accounting: a buffer miss costs one physical page read, an eviction of a
dirty frame (or a flush) costs one physical page write.  Those physical
transfers are what the paper reports as "disk reads" / "disk accesses";
they are counted by the :class:`~repro.storage.store.NodeStore` wrapping
this pool, which also splits them by tree level.

Frames can be *pinned* while a tree operation holds a reference to the
node object; pinned frames are never evicted, so in-flight mutations are
never lost to a concurrent eviction + re-read.

The pool is **not** thread-safe and is deliberately outside the
``NodeStore`` snapshot lock: a live store's pool is the writer's private
cache, and each epoch-pinned :class:`~repro.storage.snapshot.SnapshotStore`
owns a private pool of its own, so reader and writer threads never share
frames (``docs/CONCURRENCY.md``).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Iterator

from ..exceptions import BufferPinError
from .nodes import InternalNode, LeafNode
from .stats import IOStats

__all__ = ["BufferPool"]

Node = LeafNode | InternalNode


class _Frame:
    __slots__ = ("node", "dirty", "pins")

    def __init__(self, node: Node) -> None:
        self.node = node
        self.dirty = False
        self.pins = 0


class BufferPool:
    """Fixed-capacity LRU cache of node objects with pin counts.

    Parameters
    ----------
    capacity:
        Maximum number of frames.  Must comfortably exceed the tree
        height plus the reinsertion working set; 64 is a safe floor.
    write_back:
        Callback ``(node) -> None`` invoked when a dirty frame leaves the
        pool (eviction or flush); the node store uses it to serialize the
        node into the page file and count the physical write.
    stats:
        The :class:`~repro.storage.stats.IOStats` bundle that receives
        the ``buffer_hits``/``buffer_misses`` counts (the node store
        shares its own bundle so snapshots/deltas cover cache behavior).
        A private bundle is created when omitted.
    """

    def __init__(self, capacity: int, write_back: Callable[[Node], None],
                 stats: IOStats | None = None) -> None:
        if capacity < 8:
            raise ValueError(f"buffer capacity must be at least 8 frames, got {capacity}")
        self.capacity = capacity
        self._write_back = write_back
        self._frames: OrderedDict[int, _Frame] = OrderedDict()
        self.stats = stats if stats is not None else IOStats()

    def __len__(self) -> int:
        return len(self._frames)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._frames

    @property
    def hits(self) -> int:
        """Lookups served from the pool (alias of ``stats.buffer_hits``)."""
        return self.stats.buffer_hits

    @property
    def misses(self) -> int:
        """Lookups that fell through to disk (alias of ``stats.buffer_misses``)."""
        return self.stats.buffer_misses

    @property
    def hit_ratio(self) -> float:
        """Hit ratio in [0, 1] over the life of the shared stats bundle."""
        return self.stats.hit_ratio

    def get(self, page_id: int) -> Node | None:
        """Return the cached node and refresh its recency, or ``None``."""
        frame = self._frames.get(page_id)
        if frame is None:
            self.stats.buffer_misses += 1
            return None
        self.stats.buffer_hits += 1
        self._frames.move_to_end(page_id)
        return frame.node

    def put(self, node: Node, *, dirty: bool) -> None:
        """Install (or refresh) a frame for ``node``, evicting if needed."""
        frame = self._frames.get(node.page_id)
        if frame is not None:
            # Re-installing after an out-of-pool mutation: adopt the caller's
            # object, which is the authoritative current state.
            frame.node = node
            frame.dirty = frame.dirty or dirty
            self._frames.move_to_end(node.page_id)
            return
        self._evict_to(self.capacity - 1)
        new_frame = _Frame(node)
        new_frame.dirty = dirty
        self._frames[node.page_id] = new_frame

    def mark_dirty(self, page_id: int) -> None:
        """Flag a cached page as modified (no-op if not cached)."""
        frame = self._frames.get(page_id)
        if frame is not None:
            frame.dirty = True

    def pin(self, page_id: int) -> None:
        """Protect a frame from eviction until unpinned."""
        self._frames[page_id].pins += 1

    def unpin(self, page_id: int) -> None:
        """Release one pin; frames may be unpinned below zero by bugs, so clamp."""
        frame = self._frames.get(page_id)
        if frame is not None and frame.pins > 0:
            frame.pins -= 1

    def discard(self, page_id: int) -> None:
        """Drop a frame without writing it back (the page was freed)."""
        self._frames.pop(page_id, None)

    def flush(self) -> int:
        """Write back every dirty frame; returns the number written."""
        written = 0
        for frame in self._frames.values():
            if frame.dirty:
                self._write_back(frame.node)
                frame.dirty = False
                written += 1
        return written

    def clear(self) -> None:
        """Flush and drop every frame (pins are ignored: caller owns the pool)."""
        self.flush()
        self._frames.clear()

    def drop(self) -> None:
        """Drop every frame *without* write-back (transaction abort).

        Dirty in-memory state is abandoned wholesale; the caller is
        responsible for restoring any index-level counters that pointed
        at the abandoned nodes.
        """
        self._frames.clear()

    def nodes(self) -> Iterator[Node]:
        """Iterate over the cached node objects (for diagnostics)."""
        for frame in self._frames.values():
            yield frame.node

    def _evict_to(self, target: int) -> None:
        if len(self._frames) <= target:
            return
        for page_id in list(self._frames):
            if len(self._frames) <= target:
                return
            frame = self._frames[page_id]
            if frame.pins > 0:
                continue
            if frame.dirty:
                self._write_back(frame.node)
            del self._frames[page_id]
        if len(self._frames) > target:
            raise BufferPinError(
                f"all {len(self._frames)} buffered frames are pinned; "
                "increase the buffer capacity"
            )
