"""Tests for the metrics registry and the Prometheus exposition format."""

import json
import math

import pytest

from repro.obs.prometheus import escape_label_value, format_labels, render
from repro.obs.registry import Histogram, MetricsRegistry


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        c = registry.counter("jobs_total", "Jobs")
        assert c.value == 0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increments(self, registry):
        c = registry.counter("jobs_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labelled_children_are_independent(self, registry):
        c = registry.counter("ops_total", "Ops", ("kind", "op"))
        c.labels(kind="srtree", op="knn").inc()
        c.labels(kind="srtree", op="knn").inc()
        c.labels(kind="sstree", op="knn").inc()
        assert c.labels(kind="srtree", op="knn").value == 2
        assert c.labels(kind="sstree", op="knn").value == 1

    def test_wrong_label_names_rejected(self, registry):
        c = registry.counter("ops_total", "Ops", ("kind",))
        with pytest.raises(ValueError):
            c.labels(op="knn")
        with pytest.raises(ValueError):
            c.labels(kind="a", extra="b")

    def test_labelled_family_has_no_bare_inc(self, registry):
        c = registry.counter("ops_total", "Ops", ("kind",))
        with pytest.raises(ValueError):
            c.inc()


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("temperature", "Temp")
        g.set(10)
        g.inc(5)
        g.dec(2.5)
        assert g.value == 12.5


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self, registry):
        h = registry.histogram("latency", "Latency", buckets=(1, 5, 10))
        for v in (0.5, 0.7, 3, 7, 100):
            h.observe(v)
        child = h.labels() if h.label_names else h._require_default()
        cum = dict(child.cumulative())
        assert cum[1.0] == 2
        assert cum[5.0] == 3
        assert cum[10.0] == 4
        assert cum[math.inf] == 5
        assert child.count == 5
        assert child.sum == pytest.approx(111.2)

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((5, 1))


class TestRegistry:
    def test_reregistration_returns_same_family(self, registry):
        a = registry.counter("x_total", "X", ("k",))
        b = registry.counter("x_total", "X", ("k",))
        assert a is b

    def test_kind_conflict_raises(self, registry):
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_label_conflict_raises(self, registry):
        registry.counter("x_total", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", labelnames=("b",))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok_total", labelnames=("bad-label",))

    def test_to_dict_round_trips_through_json(self, registry):
        registry.counter("a_total", "A").inc(3)
        registry.histogram("h", "H", buckets=(1, 2)).observe(1.5)
        dump = json.loads(json.dumps(registry.to_dict()))
        assert dump["a_total"]["series"][0]["value"] == 3
        assert dump["h"]["kind"] == "histogram"

    def test_flatten_matches_exposition_samples(self, registry):
        c = registry.counter("reqs_total", "R", ("op",))
        c.labels(op="knn").inc(4)
        registry.histogram("lat", "L", buckets=(1,)).observe(0.5)
        flat = registry.flatten()
        assert flat['reqs_total{op="knn"}'] == 4
        assert flat['lat_bucket{le="1"}'] == 1
        assert flat['lat_bucket{le="+Inf"}'] == 1
        assert flat["lat_count"] == 1


class TestPrometheusRendering:
    def test_escaping(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
        assert format_labels({"k": 'v"1'}) == '{k="v\\"1"}'

    def test_golden_output(self, registry):
        queries = registry.counter(
            "repro_queries_total", "Queries served", ("index_kind", "op")
        )
        queries.labels(index_kind="srtree", op="knn").inc(2)
        registry.gauge("repro_index_points", "Stored points").set(100)
        lat = registry.histogram(
            "repro_query_seconds", "Query latency", buckets=(0.01, 0.1)
        )
        lat.observe(0.05)
        lat.observe(5.0)
        expected = (
            '# HELP repro_index_points Stored points\n'
            '# TYPE repro_index_points gauge\n'
            'repro_index_points 100\n'
            '# HELP repro_queries_total Queries served\n'
            '# TYPE repro_queries_total counter\n'
            'repro_queries_total{index_kind="srtree",op="knn"} 2\n'
            '# HELP repro_query_seconds Query latency\n'
            '# TYPE repro_query_seconds histogram\n'
            'repro_query_seconds_bucket{le="0.01"} 0\n'
            'repro_query_seconds_bucket{le="0.1"} 1\n'
            'repro_query_seconds_bucket{le="+Inf"} 2\n'
            'repro_query_seconds_sum 5.05\n'
            'repro_query_seconds_count 2\n'
        )
        assert render(registry) == expected

    def test_output_is_scrape_parseable(self, registry):
        """Every non-comment line must be `name{labels}? value`."""
        c = registry.counter("a_total", "with \"quotes\"\nand newline", ("x",))
        c.labels(x='we"ird\nvalue').inc()
        registry.histogram("h", "H", buckets=(1, 2)).observe(3)
        text = render(registry)
        assert text.endswith("\n")
        import re

        sample = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*'            # metric name
            r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*"'
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")*\})?'
            r' (\+Inf|-Inf|NaN|[0-9eE.+-]+)$'
        )
        for line in text.splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                assert "\n" not in line
            else:
                assert sample.match(line), line
