"""The SR-tree (Katayama & Satoh, SIGMOD 1997) — the paper's contribution.

The SR-tree keeps *both* a bounding sphere and a bounding rectangle per
node entry and defines the region as their intersection.  It inherits
the SS-tree's centroid-based construction algorithms and differs in two
region rules:

* **Radius update (Section 4.2).**  The parent sphere's radius is
  ``min(d_s, d_r)`` where ``d_s`` is the farthest reach of any child
  sphere and ``d_r`` the farthest vertex of any child rectangle — the
  rectangle side often yields a tighter sphere in high dimensions.
* **Search distance (Section 4.4).**  The MINDIST from a query point to
  a region is ``max(mindist_sphere, mindist_rect)``, a tighter lower
  bound than either shape alone.

Both rules are individually switchable (``radius_rule`` /
``mindist_rule``) so the ablation benchmarks can isolate each
contribution; the defaults are the paper's rules.
"""

from __future__ import annotations

import numpy as np

from ..geometry.rectangle import (
    farthest_point_rects,
    mindist_point_rects,
    mindist_points_rects,
)
from ..geometry.sphere import mindist_point_spheres, mindist_points_spheres
from ..storage.nodes import InternalNode, LeafNode
from .sstree import SSTree

__all__ = ["SRTree"]

Node = LeafNode | InternalNode

_RADIUS_RULES = ("min", "sphere")
_MINDIST_RULES = ("max", "sphere", "rect")


class SRTree(SSTree):
    """Dynamic SR-tree over points, with paged storage.

    Parameters beyond the common :class:`~repro.indexes.base.SpatialIndex`
    ones:

    radius_rule:
        ``"min"`` (paper, default) uses ``min(d_s, d_r)`` for the parent
        sphere radius; ``"sphere"`` falls back to the SS-tree's ``d_s``.
    mindist_rule:
        ``"max"`` (paper, default) prunes with
        ``max(sphere MINDIST, rect MINDIST)``; ``"sphere"`` / ``"rect"``
        use a single shape (ablation).
    """

    NAME = "srtree"
    HAS_RECTS = True
    HAS_SPHERES = True
    HAS_WEIGHTS = True

    # Class-level defaults so indexes reconstructed by ``open`` (which
    # bypasses ``__init__``) behave per the paper's rules.
    _radius_rule = "min"
    _mindist_rule = "max"

    def __init__(self, dims: int, *, radius_rule: str = "min",
                 mindist_rule: str = "max", **kwargs) -> None:
        if radius_rule not in _RADIUS_RULES:
            raise ValueError(f"radius_rule must be one of {_RADIUS_RULES}")
        if mindist_rule not in _MINDIST_RULES:
            raise ValueError(f"mindist_rule must be one of {_MINDIST_RULES}")
        super().__init__(dims, **kwargs)
        self._radius_rule = radius_rule
        self._mindist_rule = mindist_rule

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def _extra_meta(self) -> dict:
        return {"radius_rule": self._radius_rule,
                "mindist_rule": self._mindist_rule}

    def _restore_extra(self, meta: dict) -> None:
        self._radius_rule = meta.get("radius_rule", "min")
        self._mindist_rule = meta.get("mindist_rule", "max")

    # ------------------------------------------------------------------
    # regions
    # ------------------------------------------------------------------

    def _entry_fields(self, node: Node) -> dict:
        if node.is_leaf:
            pts = node.points[: node.count]
            center = pts.mean(axis=0)
            diff = pts - center
            radius = float(np.sqrt(np.max(np.einsum("ij,ij->i", diff, diff))))
            return {
                "center": center,
                "radius": radius,
                "low": pts.min(axis=0),
                "high": pts.max(axis=0),
                "weight": node.count,
            }

        n = node.count
        weights = node.weights[:n].astype(np.float64)
        total = weights.sum()
        center = (node.centers[:n] * weights[:, None]).sum(axis=0) / total
        diff = node.centers[:n] - center
        gaps = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        d_sphere = float(np.max(gaps + node.radii[:n]))
        if self._radius_rule == "min":
            d_rect = float(
                np.max(farthest_point_rects(center, node.lows[:n], node.highs[:n]))
            )
            radius = min(d_sphere, d_rect)
        else:
            radius = d_sphere
        return {
            "center": center,
            "radius": radius,
            "low": node.lows[:n].min(axis=0),
            "high": node.highs[:n].max(axis=0),
            "weight": int(total),
        }

    def child_mindists(self, node: InternalNode, point: np.ndarray) -> np.ndarray:
        n = node.count
        if self._mindist_rule == "rect":
            return mindist_point_rects(point, node.lows[:n], node.highs[:n])
        sphere_dists = mindist_point_spheres(point, node.centers[:n], node.radii[:n])
        if self._mindist_rule == "sphere":
            return sphere_dists
        rect_dists = mindist_point_rects(point, node.lows[:n], node.highs[:n])
        return np.maximum(sphere_dists, rect_dists)

    def child_mindists_batch(
        self, node: InternalNode, points: np.ndarray
    ) -> np.ndarray:
        n = node.count
        if self._mindist_rule == "rect":
            return mindist_points_rects(points, node.lows[:n], node.highs[:n])
        sphere_dists = mindist_points_spheres(
            points, node.centers[:n], node.radii[:n]
        )
        if self._mindist_rule == "sphere":
            return sphere_dists
        rect_dists = mindist_points_rects(points, node.lows[:n], node.highs[:n])
        return np.maximum(sphere_dists, rect_dists)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def _check_parent_entry(self, parent: InternalNode, slot: int, child: Node) -> None:
        from ..exceptions import InvariantViolationError

        low = parent.lows[slot]
        high = parent.highs[slot]
        center = parent.centers[slot]
        radius = float(parent.radii[slot])
        eps = 1e-9

        if child.is_leaf:
            pts = child.points[: child.count]
            inside_rect = np.all(pts >= low - eps) and np.all(pts <= high + eps)
            diff = pts - center
            reach = float(np.sqrt(np.max(np.einsum("ij,ij->i", diff, diff))))
        else:
            inside_rect = np.all(child.lows[: child.count] >= low - eps) and np.all(
                child.highs[: child.count] <= high + eps
            )
            # The SR-tree sphere bounds the *points* of the subtree, not
            # necessarily the child spheres (that is the whole trick of
            # the min(d_s, d_r) rule), so bound via child regions: every
            # point of a child lies within min(child sphere reach, child
            # rect farthest vertex) of the parent center.
            diff = child.centers[: child.count] - center
            gaps = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            sphere_reach = gaps + child.radii[: child.count]
            rect_reach = farthest_point_rects(
                center, child.lows[: child.count], child.highs[: child.count]
            )
            reach = float(np.max(np.minimum(sphere_reach, rect_reach)))
        if not inside_rect:
            raise InvariantViolationError(
                f"parent {parent.page_id} entry {slot} rectangle does not bound "
                f"child {child.page_id}"
            )
        if reach > radius + 1e-9:
            raise InvariantViolationError(
                f"parent {parent.page_id} entry {slot} sphere (r={radius:.6g}) "
                f"does not cover child {child.page_id} (reach {reach:.6g})"
            )
