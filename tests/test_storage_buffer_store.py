"""Unit tests for the buffer pool and node store."""

import numpy as np
import pytest

from repro.exceptions import BufferPinError, StorageError
from repro.storage.layout import NodeLayout
from repro.storage.pagefile import InMemoryPageFile
from repro.storage.stats import IOStats
from repro.storage.store import NodeStore


@pytest.fixture
def store() -> NodeStore:
    layout = NodeLayout(dims=4, has_rects=True, has_spheres=True, has_weights=True)
    return NodeStore(layout, buffer_capacity=8)


def fill_leaf(store, n=3, seed=0):
    rng = np.random.default_rng(seed)
    leaf = store.new_leaf()
    for i in range(n):
        leaf.add(rng.random(4), i)
    store.write(leaf)
    return leaf


class TestStoreBasics:
    def test_new_leaf_is_cached(self, store):
        leaf = fill_leaf(store)
        # Reading back hits the buffer: same object, no physical read.
        assert store.read(leaf.page_id) is leaf
        assert store.stats.page_reads == 0

    def test_cold_read_decodes_and_counts(self, store):
        leaf = fill_leaf(store)
        store.drop_cache()
        reread = store.read(leaf.page_id)
        assert reread is not leaf
        assert reread.count == 3
        assert store.stats.page_reads == 1
        assert store.stats.leaf_reads == 1

    def test_write_back_counts_physical_write(self, store):
        fill_leaf(store)
        assert store.stats.page_writes == 0  # lazy
        store.flush()
        assert store.stats.page_writes == 1
        assert store.stats.leaf_writes == 1

    def test_node_vs_leaf_read_split(self, store):
        leaf = fill_leaf(store)
        node = store.new_internal(level=1)
        node.add(leaf.page_id, low=np.zeros(4), high=np.ones(4),
                 center=np.full(4, 0.5), radius=1.0, weight=3)
        store.write(node)
        store.drop_cache()
        store.read(node.page_id)
        store.read(leaf.page_id)
        assert store.stats.node_reads == 1
        assert store.stats.leaf_reads == 1

    def test_free_releases_page(self, store):
        leaf = fill_leaf(store)
        store.free(leaf)
        assert store.pagefile.allocated_pages == 0

    def test_page_size_mismatch_rejected(self):
        layout = NodeLayout(dims=4, has_rects=True, has_spheres=False,
                            has_weights=False, page_size=8192)
        with pytest.raises(StorageError):
            NodeStore(layout, pagefile=InMemoryPageFile(page_size=4096))

    def test_shared_stats_object(self):
        layout = NodeLayout(dims=4, has_rects=True, has_spheres=False,
                            has_weights=False)
        stats = IOStats()
        store = NodeStore(layout, stats=stats)
        leaf = store.new_leaf()
        store.drop_cache()
        store.read(leaf.page_id)
        assert stats.page_reads == 1


class TestEviction:
    def test_lru_eviction_writes_back_dirty(self, store):
        leaves = [fill_leaf(store, seed=i) for i in range(12)]
        # Capacity is 8: the four oldest must have been written back.
        assert store.stats.page_writes >= 4
        store.drop_cache()
        for leaf in leaves:
            assert store.read(leaf.page_id).count == 3

    def test_mutations_survive_eviction_cycles(self, store):
        leaf = fill_leaf(store)
        page_id = leaf.page_id
        # Evict it by flooding the pool.
        for i in range(20):
            fill_leaf(store, seed=100 + i)
        reread = store.read(page_id)
        assert reread.count == 3

    def test_pinned_pages_survive_flood(self, store):
        leaf = fill_leaf(store)
        store.pin(leaf.page_id)
        for i in range(20):
            fill_leaf(store, seed=200 + i)
        # Still the same object: it was never evicted.
        assert store.read(leaf.page_id) is leaf
        store.unpin(leaf.page_id)

    def test_all_pinned_raises(self, store):
        leaves = [fill_leaf(store, seed=i) for i in range(8)]
        for leaf in leaves:
            store.pin(leaf.page_id)
        with pytest.raises(BufferPinError):
            fill_leaf(store, seed=99)

    def test_hit_miss_counters(self, store):
        leaf = fill_leaf(store)
        store.read(leaf.page_id)
        assert store.buffer.hits >= 1
        store.drop_cache()
        store.read(leaf.page_id)
        assert store.buffer.misses >= 1


class TestMeta:
    def test_meta_roundtrip(self, store):
        store.write_meta({"index": "srtree", "size": 42})
        assert store.read_meta() == {"index": "srtree", "size": 42}

    def test_corrupt_meta(self, store):
        store.pagefile.write(0, b"garbage")
        with pytest.raises(StorageError):
            store.read_meta()

    def test_non_dict_meta_rejected(self, store):
        import pickle
        store.pagefile.write(0, pickle.dumps([1, 2, 3]))
        with pytest.raises(StorageError):
            store.read_meta()


class TestStats:
    def test_snapshot_and_since(self):
        stats = IOStats()
        stats.page_reads = 5
        snap = stats.snapshot()
        stats.page_reads = 9
        assert stats.since(snap).page_reads == 4
        assert snap.page_reads == 5

    def test_reset(self):
        stats = IOStats(page_reads=3, leaf_writes=2, distance_computations=7)
        stats.reset()
        assert stats.page_reads == 0
        assert stats.distance_computations == 0

    def test_add(self):
        a = IOStats(page_reads=1, node_reads=1)
        b = IOStats(page_reads=2, leaf_reads=3)
        c = a + b
        assert c.page_reads == 3
        assert c.node_reads == 1
        assert c.leaf_reads == 3

    def test_disk_accesses(self):
        stats = IOStats(page_reads=4, page_writes=6)
        assert stats.disk_accesses == 10

    def test_str_mentions_reads(self):
        assert "reads=0" in str(IOStats())
