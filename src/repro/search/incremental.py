"""Incremental (distance-ranked) nearest-neighbor iteration.

Hjaltason & Samet's incremental algorithm generalizes best-first k-NN:
a single priority queue holds both *subtrees* (keyed by region MINDIST)
and *points* (keyed by exact distance); popping a point yields it as
the next-nearest neighbor.  The caller decides when to stop, so "give
me neighbors until I've seen enough" queries need no k up front —
e.g. "closest image with a licence" or distance-bounded joins.

This is an extension beyond the paper (which fixes k = 21 throughout),
built on the same per-family MINDIST bounds.

``iter_nearest`` reads ``trace.active`` once when the generator starts
and runs either an untraced loop (no span branches per node or child)
or a traced twin that records visit/prune/queue events.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator
from itertools import count

import numpy as np

from ..indexes.base import Neighbor
from ..obs.tracer import trace

__all__ = ["iter_nearest"]

_NODE = 0
_POINT = 1


def iter_nearest(index, point: np.ndarray, max_distance: float = float("inf"),
                 ) -> Iterator[Neighbor]:
    """Yield stored points in ascending distance from ``point``.

    Lazily reads only the pages needed to produce the neighbors actually
    consumed: taking one neighbor from a million-point index touches a
    handful of pages.  ``max_distance`` optionally stops the iteration
    once every remaining candidate is farther than the bound.

    Correctness invariant: an item is only yielded when its exact
    distance is no greater than the MINDIST of every unexpanded subtree
    still in the queue.
    """
    span = trace.active
    if span is None:
        return _iter_nearest(index, point, max_distance)
    return _iter_nearest_traced(index, point, max_distance, span)


def _leaf_candidates(node, point: np.ndarray, stats) -> np.ndarray:
    pts = node.points[: node.count]
    diff = pts - point
    dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    stats.distance_computations += node.count
    return pts, dists


def _iter_nearest(index, point: np.ndarray,
                  max_distance: float) -> Iterator[Neighbor]:
    """Untraced fast path: zero tracing branches in the queue loop."""
    stats = index.stats
    tiebreak = count()
    # Items: (distance, kind, tiebreak, payload); kind orders points
    # before nodes at equal distance so exact hits surface immediately.
    queue: list[tuple] = [(0.0, _NODE, next(tiebreak), index.root_id)]
    while queue:
        dist, kind, _, payload = heapq.heappop(queue)
        if dist > max_distance:
            return
        if kind == _POINT:
            candidate_point, value = payload
            yield Neighbor(dist, candidate_point, value)
            continue
        node = index.read_node(payload)
        if node.is_leaf:
            if node.count == 0:
                continue
            pts, dists = _leaf_candidates(node, point, stats)
            for i in range(node.count):
                if dists[i] <= max_distance:
                    heapq.heappush(
                        queue,
                        (float(dists[i]), _POINT, next(tiebreak),
                         (pts[i].copy(), node.values[i])),
                    )
            continue
        child_dists = index.child_mindists(node, point)
        stats.distance_computations += node.count
        child_ids = node.child_ids
        for i in range(node.count):
            if child_dists[i] <= max_distance:
                heapq.heappush(
                    queue,
                    (float(child_dists[i]), _NODE, next(tiebreak),
                     int(child_ids[i])),
                )


def _iter_nearest_traced(index, point: np.ndarray, max_distance: float,
                         span) -> Iterator[Neighbor]:
    """Traced twin of :func:`_iter_nearest`."""
    stats = index.stats
    tiebreak = count()
    queue: list[tuple] = [(0.0, _NODE, next(tiebreak), index.root_id)]
    while queue:
        dist, kind, _, payload = heapq.heappop(queue)
        if dist > max_distance:
            return
        if kind == _POINT:
            candidate_point, value = payload
            yield Neighbor(dist, candidate_point, value)
            continue
        node = index.read_node(payload)
        span.visit(payload, node.level, dist, max_distance)
        span.queue(len(queue), popped=1)
        if node.is_leaf:
            if node.count == 0:
                continue
            pts, dists = _leaf_candidates(node, point, stats)
            for i in range(node.count):
                if dists[i] <= max_distance:
                    heapq.heappush(
                        queue,
                        (float(dists[i]), _POINT, next(tiebreak),
                         (pts[i].copy(), node.values[i])),
                    )
            span.queue(len(queue))
            continue
        child_dists = index.child_mindists(node, point)
        stats.distance_computations += node.count
        for i in range(node.count):
            if child_dists[i] <= max_distance:
                heapq.heappush(
                    queue,
                    (float(child_dists[i]), _NODE, next(tiebreak),
                     int(node.child_ids[i])),
                )
                span.queue(len(queue), pushed=1)
            else:
                span.prune(int(node.child_ids[i]), node.level - 1,
                           float(child_dists[i]), max_distance)
