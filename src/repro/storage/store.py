"""The node store: page file + buffer pool + codec + I/O accounting.

Every index does all of its node I/O through a :class:`NodeStore`.  The
store owns the physical read/write counters that the benchmarks report,
splitting them into node-level and leaf-level transfers (Figure 14 of
the paper), and exposes pinning so tree operations can hold node objects
across buffer evictions safely.
"""

from __future__ import annotations

from ..exceptions import StorageError, WALError
from ..obs.tracer import trace
from .buffer import BufferPool
from .checksums import ChecksumPageFile
from .constants import META_PAGE_ID
from .layout import NodeLayout
from .nodes import InternalNode, LeafNode
from .pagecache import PageCache
from .pagefile import InMemoryPageFile, PageFile
from .serializer import NodeCodec, pack_meta, unpack_meta
from .stats import IOStats
from .wal import WriteAheadLog

__all__ = ["NodeStore", "DEFAULT_BUFFER_CAPACITY"]

Node = LeafNode | InternalNode

DEFAULT_BUFFER_CAPACITY = 512
"""Default buffer pool size in frames (4 MiB of 8 KiB pages)."""


class NodeStore:
    """Page-granular node storage for one index instance."""

    def __init__(
        self,
        layout: NodeLayout,
        pagefile: PageFile | None = None,
        buffer_capacity: int = DEFAULT_BUFFER_CAPACITY,
        stats: IOStats | None = None,
        page_cache_capacity: int = 0,
        wal: WriteAheadLog | None = None,
    ) -> None:
        self.layout = layout
        self.pagefile = pagefile if pagefile is not None else InMemoryPageFile(
            layout.page_size
        )
        if self.pagefile.page_size != layout.page_size:
            raise StorageError(
                f"page file page size {self.pagefile.page_size} does not match "
                f"layout page size {layout.page_size}"
            )
        self.codec = NodeCodec(layout)
        self.stats = stats if stats is not None else IOStats()
        self.buffer = BufferPool(buffer_capacity, self._write_back, stats=self.stats)
        #: Optional raw-image cache between the buffer pool and the page
        #: file; ``page_cache_capacity`` is in pages, 0 disables it (the
        #: default — benchmark read counts must not change under it).
        self.page_cache: PageCache | None = (
            PageCache(page_cache_capacity, stats=self.stats)
            if page_cache_capacity > 0
            else None
        )
        #: Optional write-ahead log.  While a transaction is open every
        #: page write is journaled and *shadowed* in memory instead of
        #: reaching the page file; :meth:`commit_txn` makes the shadow
        #: durable (WAL commit) and then applies it.
        self.wal = wal
        self._shadow: dict[int, bytes] = {}
        self._shadow_meta: bytes | None = None
        self._txn_freed: list[int] = []
        self._txn_allocated: list[int] = []
        self._closed = False

    @property
    def in_txn(self) -> bool:
        """Whether a WAL transaction is currently open."""
        return self.wal is not None and self.wal.in_txn

    @property
    def has_checksums(self) -> bool:
        """Whether the page stack seals pages with CRC trailers."""
        return isinstance(self.pagefile, ChecksumPageFile)

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------

    def new_leaf(self) -> LeafNode:
        """Allocate a page and return a fresh empty leaf bound to it."""
        page_id = self.pagefile.allocate()
        if self.in_txn:
            self._txn_allocated.append(page_id)
        leaf = LeafNode(page_id, self.layout.dims, self.layout.leaf_capacity)
        self.buffer.put(leaf, dirty=True)
        return leaf

    def new_internal(self, level: int, extent: int = 1) -> InternalNode:
        """Allocate page(s) and return a fresh empty internal node.

        ``extent > 1`` creates an X-tree-style supernode spanning that
        many pages (see :class:`repro.indexes.srx.SRXTree`).
        """
        page_id = self.pagefile.allocate()
        node = InternalNode(
            page_id,
            self.layout.dims,
            self.layout.node_capacity_for(extent),
            level,
            has_rects=self.layout.has_rects,
            has_spheres=self.layout.has_spheres,
            has_weights=self.layout.has_weights,
        )
        node.extra_pages = [self.pagefile.allocate() for _ in range(extent - 1)]
        if self.in_txn:
            self._txn_allocated.extend(node.all_page_ids)
        self.buffer.put(node, dirty=True)
        return node

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------

    def read(self, page_id: int, *, pin: bool = False) -> Node:
        """Fetch a node, counting a physical read per page on a miss.

        A supernode spanning ``e`` pages costs ``e`` physical reads —
        the X-tree cost model.  When a trace span is active, every fetch
        is also recorded as a page event (hit or physical read) so
        EXPLAIN can attribute the query's I/O.

        With a :class:`~repro.storage.pagecache.PageCache` configured,
        a buffer-pool miss first probes the cache for the node's raw
        image; a hit decodes it (zero-copy) without touching the page
        file, counts **no** physical read, and is recorded on the span
        as a hit fetch plus ``span.page_cache_hits``.
        """
        node = self.buffer.get(page_id)
        if node is None:
            cache = self.page_cache
            image = cache.get(page_id) if cache is not None else None
            if image is not None:
                node = self.codec.decode(page_id, image)
                self.buffer.put(node, dirty=False)
                span = trace.active
                if span is not None:
                    span.page(page_id, node.level, node.extent, hit=True)
                    span.page_cache_hits += 1
                if pin:
                    self.buffer.pin(page_id)
                return node
            data = self._read_page_image(page_id)
            extent, extras = self.codec.peek_extent(data)
            if extent > 1:
                data = data + b"".join(self._read_page_image(p) for p in extras)
            node = self.codec.decode(page_id, data)
            self.stats.page_reads += extent
            if node.is_leaf:
                self.stats.leaf_reads += extent
            else:
                self.stats.node_reads += extent
            self.buffer.put(node, dirty=False)
            if cache is not None:
                cache.put(page_id, data, extent)
            span = trace.active
            if span is not None:
                span.page(page_id, node.level, extent, hit=False)
        else:
            span = trace.active
            if span is not None:
                span.page(page_id, node.level, node.extent, hit=True)
        if pin:
            self.buffer.pin(page_id)
        return node

    def _read_page_image(self, page_id: int) -> bytes:
        """One physical page image, honouring the transaction shadow.

        During a transaction the freshest copy of an evicted dirty page
        lives in the shadow table, not the data file; reading it from
        there still counts as a physical read (the page *would* have
        come from disk had the buffer been larger), which preserves the
        EXPLAIN-pages == ``IOStats.page_reads`` invariant.
        """
        if self._shadow:
            image = self._shadow.get(page_id)
            if image is not None:
                return image
        return self.pagefile.read(page_id)

    def write(self, node: Node) -> None:
        """Record that ``node`` was mutated (write-back happens lazily)."""
        self.buffer.put(node, dirty=True)
        if self.page_cache is not None:
            self.page_cache.invalidate(node.page_id)

    def pin(self, page_id: int) -> None:
        """Protect a buffered page from eviction."""
        self.buffer.pin(page_id)

    def unpin(self, page_id: int) -> None:
        """Release a pin taken with :meth:`pin` or ``read(pin=True)``."""
        self.buffer.unpin(page_id)

    def free(self, node_or_id: Node | int) -> None:
        """Release every page of a node back to the page file.

        Inside a transaction the release is *deferred* to commit time:
        an aborted transaction must leave the committed tree intact, and
        the committed tree may still reference these pages.
        """
        if isinstance(node_or_id, int):
            page_ids = [node_or_id]
        else:
            page_ids = node_or_id.all_page_ids
        self.buffer.discard(page_ids[0])
        if self.page_cache is not None:
            self.page_cache.invalidate(page_ids[0])
        if self.in_txn:
            for page_id in page_ids:
                self._shadow.pop(page_id, None)
            self._txn_freed.extend(page_ids)
            return
        for page_id in page_ids:
            self.pagefile.free(page_id)

    def flush(self) -> None:
        """Write back every dirty buffered node."""
        self.buffer.flush()
        self.pagefile.sync()

    def drop_cache(self) -> None:
        """Flush, then empty the buffer pool and the page cache.

        The benchmark harness calls this before each measured query so
        that every query starts cold and the read counter matches the
        paper's per-query disk-read metric.
        """
        self.buffer.clear()
        if self.page_cache is not None:
            self.page_cache.clear()

    def _write_back(self, node: Node) -> None:
        image = self.codec.encode(node)
        page_size = self.layout.page_size
        in_txn = self.in_txn
        for i, page_id in enumerate(node.all_page_ids):
            chunk = image[i * page_size : (i + 1) * page_size]
            if in_txn:
                # Journal + shadow; the data file is untouched until
                # commit.  Chunks are padded so supernode reassembly
                # (first + extras concatenation) stays page aligned.
                if len(chunk) < page_size:
                    chunk = chunk + b"\x00" * (page_size - len(chunk))
                self.wal.log_page(page_id, chunk)
                self._shadow[page_id] = chunk
            else:
                self.pagefile.write(page_id, chunk)
        extent = node.extent
        self.stats.page_writes += extent
        if node.is_leaf:
            self.stats.leaf_writes += extent
        else:
            self.stats.node_writes += extent

    # ------------------------------------------------------------------
    # metadata (persistence)
    # ------------------------------------------------------------------

    def write_meta(self, meta: dict) -> None:
        """Persist an index metadata dict into the reserved meta page."""
        image = pack_meta(meta)
        if len(image) > self.layout.page_size:
            raise StorageError("index metadata does not fit in the meta page")
        if self.in_txn:
            self.wal.log_meta(image)
            self._shadow_meta = image
            return
        self.pagefile.write(META_PAGE_ID, image)
        self.pagefile.sync()

    def read_meta(self) -> dict:
        """Load the index metadata dict from the reserved meta page."""
        if self._shadow_meta is not None:
            data: bytes = self._shadow_meta
        else:
            data = self.pagefile.read(META_PAGE_ID)
        try:
            return unpack_meta(data)
        except Exception as exc:
            raise StorageError(f"meta page is corrupt: {exc}") from exc

    # ------------------------------------------------------------------
    # transactions (WAL-backed durability)
    # ------------------------------------------------------------------

    def begin_txn(self) -> int:
        """Open a WAL transaction; page writes shadow until commit."""
        if self.wal is None:
            raise WALError("node store has no write-ahead log attached")
        txn_id = self.wal.begin()
        self._shadow.clear()
        self._shadow_meta = None
        self._txn_freed.clear()
        self._txn_allocated.clear()
        return txn_id

    def commit_txn(self) -> None:
        """Make the open transaction durable, then apply it.

        Sequence: flush dirty buffers (their images land in the WAL and
        the shadow table), append COMMIT (the durability point), apply
        the shadow to the data file, release deferred frees, and
        checkpoint if the log has outgrown its threshold.  A crash after
        COMMIT but before (or during) the apply is exactly what
        :func:`~repro.storage.wal.recover` repairs on reopen.
        """
        if not self.in_txn:
            raise WALError("no open transaction")
        self.buffer.flush()
        self.wal.commit()
        for page_id, image in self._shadow.items():
            self.pagefile.write(page_id, image)
        if self._shadow_meta is not None:
            self.pagefile.write(META_PAGE_ID, self._shadow_meta)
        for page_id in self._txn_freed:
            self.pagefile.free(page_id)
        self._shadow.clear()
        self._shadow_meta = None
        self._txn_freed.clear()
        self._txn_allocated.clear()
        if self.wal.size() > self.wal.checkpoint_bytes:
            self.checkpoint()

    def abort_txn(self) -> None:
        """Roll the open transaction back entirely in memory.

        Nothing journaled reaches the data file; dirty buffer frames are
        dropped (not flushed), shadowed images and deferred frees are
        discarded, and pages allocated by the transaction return to the
        free list.  The caller must restore its own counters (root id,
        height, size) from a pre-transaction snapshot.
        """
        if self.wal is not None and self.wal.in_txn:
            self.wal.abort()
        self.buffer.drop()
        if self.page_cache is not None:
            self.page_cache.clear()
        self._shadow.clear()
        self._shadow_meta = None
        self._txn_freed.clear()
        for page_id in reversed(self._txn_allocated):
            self.pagefile.free(page_id)
        self._txn_allocated.clear()

    def checkpoint(self) -> None:
        """Fsync the data file, then truncate the WAL."""
        if self.wal is None:
            return
        self.pagefile.sync()
        self.wal.truncate()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has completed."""
        return self._closed

    def close(self) -> None:
        """Flush everything and close the backing page file (idempotent)."""
        if self._closed:
            return
        if self.in_txn:  # a caller died mid-transaction: roll back
            self.abort_txn()
        self.flush()
        if self.wal is not None:
            self.checkpoint()
            self.wal.close()
        self.pagefile.close()
        self._closed = True

    def __enter__(self) -> "NodeStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
