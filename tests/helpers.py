"""Shared test helpers."""

from __future__ import annotations

import numpy as np


def brute_force_knn(points: np.ndarray, query: np.ndarray, k: int) -> list[int]:
    """Ground-truth k-NN: indices of the k closest rows, ascending distance.

    Ties are broken by row index, matching the insertion order used by
    the tests (values default to row indices).
    """
    dists = np.linalg.norm(points - query, axis=1)
    order = np.lexsort((np.arange(len(points)), dists))
    return [int(i) for i in order[:k]]
