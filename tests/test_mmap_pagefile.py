"""MmapPageFile: zero-copy read-only mapping of a saved index file.

The mapping is the storage layer the multiprocess serving pool stands
on: reads are ``memoryview`` slices of one OS-page-cache-backed copy of
the file, every mutation is rejected, and any write-ahead log left by a
crashed writer is recovered *before* the file is mapped (a map taken
over unapplied commits would serve stale pages forever).
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro.api import Database
from repro.exceptions import CrashError, StorageError
from repro.indexes.factory import _open_index
from repro.storage import CHECKSUM_TRAILER_SIZE, FaultPlan, FilePageFile
from repro.storage.pagefile import MmapPageFile, PageNotFoundError
from repro.storage.stack import open_pagefile, open_storage, wal_path

PAGE = 512


@pytest.fixture
def data_file(tmp_path, rng):
    """A FilePageFile-written data file with three recognizable pages."""
    path = str(tmp_path / "pages.dat")
    with FilePageFile(path, page_size=PAGE) as pf:
        for fill in (b"\x11", b"\x22", b"\x33"):
            pid = pf.allocate()
            pf.write(pid, fill * PAGE)
        pf.sync()
    return path


def test_read_returns_zero_copy_memoryview(data_file):
    with MmapPageFile(data_file, page_size=PAGE) as pf:
        assert pf.readonly is True
        for pid, fill in ((1, 0x11), (2, 0x22), (3, 0x33)):
            view = pf.read(pid)
            assert isinstance(view, memoryview)
            assert len(view) == PAGE
            assert bytes(view) == bytes([fill]) * PAGE
            # The decode path aliases this buffer directly; no copy.
            arr = np.frombuffer(view, dtype=np.uint8)
            assert arr[0] == fill and arr.base is not None


def test_every_mutation_is_rejected(data_file):
    with MmapPageFile(data_file, page_size=PAGE) as pf:
        with pytest.raises(StorageError, match="read-only"):
            pf.allocate()
        with pytest.raises(StorageError, match="read-only"):
            pf.write(1, b"\0" * PAGE)
        with pytest.raises(StorageError, match="read-only"):
            pf.free(1)
        with pytest.raises(StorageError, match="read-only"):
            pf.ensure_allocated(2)
        # sync is a no-op, not an error: closing paths call it blindly.
        pf.sync()
    # FilePageFile, by contrast, is writable.
    assert FilePageFile.readonly is False


def test_out_of_range_and_closed_reads_fail_cleanly(data_file):
    pf = MmapPageFile(data_file, page_size=PAGE)
    with pytest.raises(PageNotFoundError):
        pf.read(99)
    pf.close()
    with pytest.raises(StorageError, match="closed"):
        pf.read(1)
    pf.close()  # idempotent


def test_file_shorter_than_one_page_is_rejected(tmp_path):
    runt = tmp_path / "runt.dat"
    runt.write_bytes(b"x" * (PAGE - 1))
    with pytest.raises(StorageError, match="no complete page"):
        MmapPageFile(str(runt), page_size=PAGE)


def test_close_tolerates_outstanding_numpy_views(data_file):
    pf = MmapPageFile(data_file, page_size=PAGE)
    arr = np.frombuffer(pf.read(2), dtype=np.uint8)
    # The live view pins the mapping; close() must neither raise nor
    # invalidate the array (the OS unmaps when the last view dies).
    pf.close()
    assert int(arr[0]) == 0x22


def test_checksummed_stack_verifies_over_the_mapping(tmp_path):
    path = str(tmp_path / "sealed.dat")
    writer = open_pagefile(path, page_size=PAGE, checksums=True)
    pid = writer.allocate()
    writer.write(pid, b"\xab" * PAGE)
    writer.sync()
    writer.close()

    reader = open_pagefile(path, page_size=PAGE, checksums=True, mmap=True)
    try:
        assert reader.readonly is True
        assert bytes(reader.read(pid)) == b"\xab" * PAGE
        with pytest.raises(StorageError, match="read-only"):
            reader.write(pid, b"\0" * PAGE)
    finally:
        reader.close()

    # A flipped bit in the mapped image is still caught by the CRC.
    physical = PAGE + CHECKSUM_TRAILER_SIZE
    with open(path, "r+b") as fh:
        fh.seek(pid * physical + 7)
        byte = fh.read(1)
        fh.seek(-1, 1)
        fh.write(bytes([byte[0] ^ 0xFF]))
    reader = open_pagefile(path, page_size=PAGE, checksums=True, mmap=True)
    try:
        from repro.exceptions import ChecksumError
        with pytest.raises(ChecksumError):
            reader.read(pid)
    finally:
        reader.close()


def test_mmap_requires_a_real_file(tmp_path):
    with pytest.raises(ValueError, match="path"):
        open_pagefile(None, page_size=PAGE, mmap=True)


def test_pending_wal_is_recovered_before_mapping(tmp_path, rng):
    """A crashed writer's committed-but-unapplied WAL must reach the
    data file before it is mapped; the mapping then serves the
    recovered state, byte-identical to a writable re-open."""
    out = str(tmp_path / "crashed.db")
    points = rng.random((150, 4))
    with Database.create(out, kind="sr", dims=4, durability="wal",
                         page_size=2048):
        pass
    plan = FaultPlan(fail_after_write_bytes=40_000)
    db = Database.open(out, fault_plan=plan, sync_every=50)
    with pytest.raises(CrashError):
        for i, point in enumerate(points):
            db.insert(point, value=i)
    pagefile = db.index.store.pagefile
    while hasattr(pagefile, "inner"):
        pagefile = pagefile.inner
    pagefile.close()  # positional I/O is unbuffered; closing the fd is enough
    db.index.store.wal.close()

    pf, wal, report = open_storage(out, page_size=2048, checksums=True,
                                   readonly=True)
    try:
        assert wal is None
        assert pf.readonly is True
        assert report.committed_txns > 0  # recovery really ran first
    finally:
        pf.close()

    ro = _open_index(out, readonly=True)
    try:
        assert ro.store.readonly
        got = [(n.value, n.distance) for n in ro.nearest(points[0], k=5)]
        ro_size = ro.size
    finally:
        ro.close()
    rw = _open_index(out)
    try:
        want = [(n.value, n.distance) for n in rw.nearest(points[0], k=5)]
        assert got == want
        assert ro_size == rw.size
    finally:
        rw.close()


def test_readonly_open_serves_without_ever_writing(tmp_path, small_cloud):
    """Open → query → close over a cleanly saved file must leave the
    bytes on disk untouched (close skips save) and leave no WAL."""
    out = tmp_path / "frozen.db"
    with Database.create(str(out), kind="sr", dims=small_cloud.shape[1],
                         page_size=2048) as db:
        db.insert_many(small_cloud)
    before = out.read_bytes()

    index = _open_index(str(out), readonly=True)
    try:
        hits = index.nearest(small_cloud[0], k=3)
        assert hits and hits[0].distance == 0.0
        with pytest.raises(StorageError):
            index.insert(small_cloud[0], value="nope")
    finally:
        index.close()

    assert out.read_bytes() == before
    assert not os.path.exists(wal_path(str(out)))


def test_filepagefile_positional_reads_are_thread_safe(tmp_path):
    """pread carries its own offset: concurrent readers sharing one fd
    never race on a seek position."""
    path = str(tmp_path / "shared.dat")
    n_pages = 32
    with FilePageFile(path, page_size=PAGE) as pf:
        for i in range(n_pages):
            pid = pf.allocate()
            pf.write(pid, bytes([i % 251]) * PAGE)
        pf.sync()

    pf = FilePageFile(path, page_size=PAGE, create=False)
    errors: list[str] = []

    def hammer(seed: int) -> None:
        rng = np.random.default_rng(seed)
        for _ in range(200):
            pid = int(rng.integers(1, n_pages + 1))
            data = pf.read(pid)
            if data != bytes([(pid - 1) % 251]) * PAGE:
                errors.append(f"page {pid} corrupted")
                return

    threads = [threading.Thread(target=hammer, args=(s,)) for s in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    pf.close()
    assert errors == []
