"""The VAMSplit R-tree (White & Jain, SPIE 1996).

A *static* R-tree built top-down from the full data set: points are
recursively partitioned by planes orthogonal to the dimension with the
highest variance, with the split position snapped to a multiple of the
capacity of the subtree being carved off — the VAM (variance,
approximate median) split — which guarantees the minimum number of disk
blocks.  The paper uses it as the optimized upper baseline: it "takes
advantage of full knowledge of the data set while the others are
designed to be fully dynamic" (Section 3.1).

Queries use the same branch-and-bound machinery as the dynamic trees,
over plain bounding rectangles.  ``insert``/``delete`` raise: rebuild
the tree to change its contents.
"""

from __future__ import annotations

import numpy as np

from ..geometry.rectangle import mindist_point_rects
from ..storage.nodes import InternalNode
from .base import SpatialIndex

__all__ = ["VAMSplitRTree"]


class VAMSplitRTree(SpatialIndex):
    """Static, bulk-loaded R-tree over points, with paged storage."""

    NAME = "vamsplit"
    HAS_RECTS = True
    HAS_SPHERES = False
    HAS_WEIGHTS = False

    def __init__(self, dims: int, **kwargs) -> None:
        super().__init__(dims, **kwargs)
        self._built = False

    def build(self, points, values=None) -> None:
        """Construct the tree from the complete data set in one pass."""
        if self._built:
            raise RuntimeError("a VAMSplit R-tree is static: build it only once")
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != self.dims:
            raise ValueError(f"expected an (N, {self.dims}) array of points")
        n = points.shape[0]
        if n == 0:
            self._built = True
            return
        if values is None:
            values = list(range(n))
        else:
            values = list(values)
            if len(values) != n:
                raise ValueError("points and values lengths differ")

        # The empty leaf created by the base constructor becomes garbage.
        self._store.free(self._root_id)

        indices = np.arange(n)
        root_id, _, _, height = self._build_subtree(points, values, indices)
        self._root_id = root_id
        self._height = height
        self._size = n
        self._built = True

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _subtree_capacity(self, height: int) -> int:
        """Maximum points under a subtree of the given height."""
        return self.leaf_capacity * self.node_capacity ** (height - 1)

    def _build_subtree(
        self, points: np.ndarray, values: list, indices: np.ndarray
    ) -> tuple[int, np.ndarray, np.ndarray, int]:
        """Build the subtree for ``indices``; returns (page, low, high, height)."""
        n = indices.shape[0]
        if n <= self.leaf_capacity:
            leaf = self._store.new_leaf()
            for i in indices:
                leaf.add(points[i], values[i])
            self._store.write(leaf)
            pts = points[indices]
            return leaf.page_id, pts.min(axis=0), pts.max(axis=0), 1

        height = 2
        while self._subtree_capacity(height) < n:
            height += 1
        child_capacity = self._subtree_capacity(height - 1)

        groups = self._vam_partition(points, indices, child_capacity)
        node = self._store.new_internal(height - 1)
        lows = []
        highs = []
        for group in groups:
            child_id, low, high, _ = self._build_subtree(points, values, group)
            node.add(child_id, low=low, high=high)
            lows.append(low)
            highs.append(high)
        self._store.write(node)
        low = np.min(lows, axis=0)
        high = np.max(highs, axis=0)
        return node.page_id, low, high, height

    def _vam_partition(
        self, points: np.ndarray, indices: np.ndarray, child_capacity: int
    ) -> list[np.ndarray]:
        """Recursive VAM splits until every group fits one child subtree.

        Each binary split sorts along the highest-variance dimension and
        cuts at the multiple of ``child_capacity`` closest to the median,
        so every group except possibly the last is completely full —
        the minimal-block-count guarantee.
        """
        n = indices.shape[0]
        if n <= child_capacity:
            return [indices]
        coords = points[indices]
        dim = int(np.argmax(np.var(coords, axis=0)))
        order = np.argsort(coords[:, dim], kind="stable")
        ordered = indices[order]

        blocks_left = max(1, round(n / 2 / child_capacity))
        split = blocks_left * child_capacity
        if split >= n:
            split = (n - 1) // child_capacity * child_capacity
            split = max(split, child_capacity)
        left = ordered[:split]
        right = ordered[split:]
        return self._vam_partition(points, left, child_capacity) + self._vam_partition(
            points, right, child_capacity
        )

    # ------------------------------------------------------------------
    # SpatialIndex interface
    # ------------------------------------------------------------------

    def _restore_extra(self, meta: dict) -> None:
        # A reopened tree holds its data set already.
        self._built = True

    def _insert_point(self, point, value: object = None) -> None:
        raise NotImplementedError(
            "the VAMSplit R-tree is a static index: use build() with the "
            "complete data set"
        )

    def child_mindists(self, node: InternalNode, point: np.ndarray) -> np.ndarray:
        n = node.count
        return mindist_point_rects(point, node.lows[:n], node.highs[:n])

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify bounding containment and the stored point count."""
        from ..exceptions import InvariantViolationError

        total = 0
        stack = [(self._root_id, None, None)]
        while stack:
            page_id, low, high = stack.pop()
            node = self.read_node(page_id)
            if node.is_leaf:
                total += node.count
                if low is not None and node.count:
                    pts = node.points[: node.count]
                    if not (np.all(pts >= low - 1e-9) and np.all(pts <= high + 1e-9)):
                        raise InvariantViolationError(
                            f"leaf {page_id} holds points outside its MBR"
                        )
                continue
            for i in range(node.count):
                if low is not None and (
                    np.any(node.lows[i] < low - 1e-9)
                    or np.any(node.highs[i] > high + 1e-9)
                ):
                    raise InvariantViolationError(
                        f"child {i} of node {page_id} leaks outside its MBR"
                    )
                stack.append(
                    (int(node.child_ids[i]), node.lows[i].copy(), node.highs[i].copy())
                )
        if total != self._size:
            raise InvariantViolationError(
                f"tree holds {total} points, size says {self._size}"
            )
