"""The original R-tree (Guttman, SIGMOD 1984).

The ancestor of the whole family: the paper's R*-tree baseline "is the
most successful variant of the R-tree", and the SR-tree inherits the
R-tree's deletion algorithm outright (Section 4.3).  Implementing
Guttman's original makes the lineage measurable: how much of the
R*-tree's performance comes from its improved ChooseSubtree/split/
reinsertion, versus the basic bounding-rectangle hierarchy.

Differences from the R*-tree:

* **ChooseLeaf** descends by least volume enlargement at *every* level
  (no leaf-level overlap minimization);
* **splits** use Guttman's quadratic algorithm (PickSeeds maximizes the
  dead area of a seed pair, PickNext assigns the entry with the largest
  enlargement difference) or, optionally, his linear algorithm;
* **no forced reinsertion** — an overflowing node always splits.
"""

from __future__ import annotations

import numpy as np

from ..geometry.rectangle import mindist_point_rects
from ..storage.nodes import InternalNode, LeafNode
from .base import Entry
from .dynamic import DynamicTree

__all__ = ["RTree", "quadratic_split", "linear_split"]

Node = LeafNode | InternalNode

_SPLIT_STRATEGIES = ("quadratic", "linear")


class RTree(DynamicTree):
    """Guttman's original dynamic R-tree over points.

    Parameters beyond the common ones:

    split:
        ``"quadratic"`` (default, Guttman's recommendation) or
        ``"linear"``.
    """

    NAME = "rtree"
    HAS_RECTS = True
    HAS_SPHERES = False
    HAS_WEIGHTS = False

    _split_strategy = "quadratic"  # default for instances built by ``open``

    def __init__(self, dims: int, *, split: str = "quadratic", **kwargs) -> None:
        if split not in _SPLIT_STRATEGIES:
            raise ValueError(f"split must be one of {_SPLIT_STRATEGIES}")
        super().__init__(dims, **kwargs)
        self._split_strategy = split

    def _extra_meta(self) -> dict:
        return {"split": self._split_strategy}

    def _restore_extra(self, meta: dict) -> None:
        self._split_strategy = meta.get("split", "quadratic")

    # ------------------------------------------------------------------
    # ChooseLeaf: least volume enlargement, ties by least volume
    # ------------------------------------------------------------------

    def _choose_child(self, node: InternalNode, entry: Entry) -> int:
        n = node.count
        lows = node.lows[:n]
        highs = node.highs[:n]
        new_lows = np.minimum(lows, entry.low)
        new_highs = np.maximum(highs, entry.high)
        volumes = np.prod(highs - lows, axis=1)
        enlargements = np.prod(new_highs - new_lows, axis=1) - volumes
        margin_growth = np.sum(new_highs - new_lows, axis=1) - np.sum(
            highs - lows, axis=1
        )
        keys = np.lexsort((volumes, margin_growth, enlargements))
        return int(keys[0])

    # ------------------------------------------------------------------
    # splits
    # ------------------------------------------------------------------

    def _split_indices(self, node: Node) -> tuple[np.ndarray, np.ndarray]:
        if node.is_leaf:
            lows = highs = node.points[: node.count]
            m = self.leaf_min_fill
        else:
            lows = node.lows[: node.count]
            highs = node.highs[: node.count]
            m = self.node_min_fill
        if self._split_strategy == "quadratic":
            return quadratic_split(lows, highs, m)
        return linear_split(lows, highs, m)

    # ------------------------------------------------------------------
    # regions and search (identical to the R*-tree's)
    # ------------------------------------------------------------------

    def _entry_fields(self, node: Node) -> dict:
        if node.is_leaf:
            pts = node.points[: node.count]
            return {"low": pts.min(axis=0), "high": pts.max(axis=0)}
        lows = node.lows[: node.count]
        highs = node.highs[: node.count]
        return {"low": lows.min(axis=0), "high": highs.max(axis=0)}

    def child_mindists(self, node: InternalNode, point: np.ndarray) -> np.ndarray:
        n = node.count
        return mindist_point_rects(point, node.lows[:n], node.highs[:n])

    # ------------------------------------------------------------------
    # no forced reinsertion
    # ------------------------------------------------------------------

    def _should_reinsert(self, node: Node, is_root: bool) -> bool:
        return False

    def _mark_reinserted(self, node: Node) -> None:  # pragma: no cover - unused
        raise AssertionError("the original R-tree never reinserts")

    def _reinsert_indices(self, node, count):  # pragma: no cover - unused
        raise AssertionError("the original R-tree never reinserts")

    # ------------------------------------------------------------------
    # validation (same bound check as the R*-tree)
    # ------------------------------------------------------------------

    def _check_parent_entry(self, parent: InternalNode, slot: int, child: Node) -> None:
        from ..exceptions import InvariantViolationError

        low = parent.lows[slot]
        high = parent.highs[slot]
        if child.is_leaf:
            pts = child.points[: child.count]
            inside = np.all(pts >= low - 1e-9) and np.all(pts <= high + 1e-9)
        else:
            inside = np.all(child.lows[: child.count] >= low - 1e-9) and np.all(
                child.highs[: child.count] <= high + 1e-9
            )
        if not inside:
            raise InvariantViolationError(
                f"parent {parent.page_id} entry {slot} does not bound child "
                f"{child.page_id}"
            )


def quadratic_split(lows: np.ndarray, highs: np.ndarray,
                    m: int) -> tuple[np.ndarray, np.ndarray]:
    """Guttman's quadratic split of ``n`` rectangles into two groups.

    PickSeeds chooses the pair wasting the most dead area if grouped
    together; PickNext repeatedly assigns the unplaced entry with the
    greatest difference of enlargement between the two groups, to the
    group needing less enlargement.  Minimum fill is enforced by
    assigning the remainder wholesale once a group runs short.
    """
    n = lows.shape[0]
    if not 1 <= m <= n // 2:
        m = max(1, min(m, n // 2))

    # PickSeeds: maximal dead volume d(i, j) = vol(cover) - vol(i) - vol(j).
    cover_low = np.minimum(lows[:, None, :], lows[None, :, :])
    cover_high = np.maximum(highs[:, None, :], highs[None, :, :])
    cover_vol = np.prod(cover_high - cover_low, axis=2)
    vols = np.prod(highs - lows, axis=1)
    dead = cover_vol - vols[:, None] - vols[None, :]
    # Tie-safe fallback for degenerate volumes: widest pairwise margin.
    dead_margin = np.sum(cover_high - cover_low, axis=2)
    np.fill_diagonal(dead, -np.inf)
    np.fill_diagonal(dead_margin, -np.inf)
    flat = np.argmax(dead + 1e-9 * dead_margin)
    seed_a, seed_b = np.unravel_index(flat, dead.shape)

    group_a = [int(seed_a)]
    group_b = [int(seed_b)]
    bounds_a = [lows[seed_a].copy(), highs[seed_a].copy()]
    bounds_b = [lows[seed_b].copy(), highs[seed_b].copy()]
    remaining = [i for i in range(n) if i not in (seed_a, seed_b)]

    while remaining:
        # Minimum-fill guard: if a group must take every remaining entry
        # to reach m, assign them all.
        if len(group_a) + len(remaining) == m:
            group_a.extend(remaining)
            break
        if len(group_b) + len(remaining) == m:
            group_b.extend(remaining)
            break
        # PickNext: maximal |d1 - d2| preference.
        vol_a = float(np.prod(bounds_a[1] - bounds_a[0]))
        vol_b = float(np.prod(bounds_b[1] - bounds_b[0]))
        best_i = -1
        best_pref = -np.inf
        best_d: tuple[float, float] = (0.0, 0.0)
        for i in remaining:
            d1 = float(np.prod(np.maximum(bounds_a[1], highs[i])
                               - np.minimum(bounds_a[0], lows[i]))) - vol_a
            d2 = float(np.prod(np.maximum(bounds_b[1], highs[i])
                               - np.minimum(bounds_b[0], lows[i]))) - vol_b
            pref = abs(d1 - d2)
            if pref > best_pref:
                best_pref = pref
                best_i = i
                best_d = (d1, d2)
        remaining.remove(best_i)
        d1, d2 = best_d
        # Resolve ties by smaller volume, then smaller group.
        take_a = (d1, vol_a, len(group_a)) <= (d2, vol_b, len(group_b))
        if take_a:
            group_a.append(best_i)
            bounds_a = [np.minimum(bounds_a[0], lows[best_i]),
                        np.maximum(bounds_a[1], highs[best_i])]
        else:
            group_b.append(best_i)
            bounds_b = [np.minimum(bounds_b[0], lows[best_i]),
                        np.maximum(bounds_b[1], highs[best_i])]

    return np.array(group_a), np.array(group_b)


def linear_split(lows: np.ndarray, highs: np.ndarray,
                 m: int) -> tuple[np.ndarray, np.ndarray]:
    """Guttman's linear split: seeds with greatest normalized separation.

    For each dimension, find the entry with the highest low side and the
    one with the lowest high side; normalize their separation by the
    dimension's width; the dimension with the greatest normalized
    separation supplies the two seeds.  Remaining entries are assigned
    round-robin by least enlargement (linear time).
    """
    n = lows.shape[0]
    if not 1 <= m <= n // 2:
        m = max(1, min(m, n // 2))

    width = np.maximum(highs.max(axis=0) - lows.min(axis=0), 1e-300)
    highest_low = np.argmax(lows, axis=0)
    lowest_high = np.argmin(highs, axis=0)
    separation = (lows[highest_low, range(lows.shape[1])]
                  - highs[lowest_high, range(lows.shape[1])]) / width
    dim = int(np.argmax(separation))
    seed_a = int(highest_low[dim])
    seed_b = int(lowest_high[dim])
    if seed_a == seed_b:
        seed_b = (seed_a + 1) % n

    group_a = [seed_a]
    group_b = [seed_b]
    bounds_a = [lows[seed_a].copy(), highs[seed_a].copy()]
    bounds_b = [lows[seed_b].copy(), highs[seed_b].copy()]
    remaining = [i for i in range(n) if i not in (seed_a, seed_b)]

    for index, i in enumerate(remaining):
        left = len(remaining) - index
        if len(group_a) + left == m:
            group_a.extend(remaining[index:])
            break
        if len(group_b) + left == m:
            group_b.extend(remaining[index:])
            break
        d1 = float(np.prod(np.maximum(bounds_a[1], highs[i])
                           - np.minimum(bounds_a[0], lows[i])))
        d2 = float(np.prod(np.maximum(bounds_b[1], highs[i])
                           - np.minimum(bounds_b[0], lows[i])))
        if (d1, len(group_a)) <= (d2, len(group_b)):
            group_a.append(i)
            bounds_a = [np.minimum(bounds_a[0], lows[i]),
                        np.maximum(bounds_a[1], highs[i])]
        else:
            group_b.append(i)
            bounds_b = [np.minimum(bounds_b[0], lows[i]),
                        np.maximum(bounds_b[1], highs[i])]

    return np.array(group_a), np.array(group_b)
