"""Experiment runner: build indexes and measure query/insertion costs.

Reproduces the paper's measurement methodology (Section 3.1):

* **Queries** are k-nearest-neighbor searches (k = 21) from points of
  the data set, averaged over many random trials.  Before each query the
  buffer pool is dropped, so the read counter equals the number of
  pages the query touches — the paper's "number of disk reads".
* **CPU time** is wall-clock time of the search code
  (``time.perf_counter``); the machine-independent distance-computation
  count is reported alongside it.
* **Insertion cost** (Figure 9) is the average CPU time and the average
  number of physical disk accesses (reads + writes) per inserted point,
  measured while building with a realistic (finite) buffer pool.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..indexes import build_index
from ..indexes.base import SpatialIndex
from ..obs import REGISTRY

__all__ = [
    "QueryCost",
    "BuildCost",
    "run_query_batch",
    "build_with_cost",
    "metrics_delta",
]


def metrics_delta(before: dict[str, float],
                  after: dict[str, float] | None = None) -> dict[str, float]:
    """Per-run metric snapshot: flat registry samples that changed.

    ``before`` is a :meth:`~repro.obs.registry.MetricsRegistry.flatten`
    dump taken before the run; ``after`` defaults to the registry's
    current state.  Returns only the samples whose value changed (new
    samples count from zero), so a benchmark report carries exactly the
    metric activity of its own run.
    """
    if after is None:
        after = REGISTRY.flatten()
    delta: dict[str, float] = {}
    for name, value in after.items():
        diff = value - before.get(name, 0.0)
        if diff:
            delta[name] = diff
    return delta


@dataclass(frozen=True)
class QueryCost:
    """Per-query averages over a batch of k-NN searches.

    ``buffer_hit_ratio`` is the pool hit ratio over the batch (0.0 for
    cold runs, by construction).  ``metrics`` is the per-run metrics
    registry snapshot (flat sample deltas, see :func:`metrics_delta`).
    """

    queries: int
    k: int
    cpu_ms: float
    page_reads: float
    node_reads: float
    leaf_reads: float
    distance_computations: float
    buffer_hit_ratio: float = 0.0
    metrics: dict = field(default_factory=dict, compare=False)


@dataclass(frozen=True)
class BuildCost:
    """Per-insert averages over the construction of an index.

    ``metrics`` is the per-run metrics registry snapshot (flat sample
    deltas covering the build: inserts, splits, reinsertions, ...).
    """

    points: int
    cpu_ms: float
    disk_accesses: float
    page_reads: float
    page_writes: float
    buffer_hit_ratio: float = 0.0
    metrics: dict = field(default_factory=dict, compare=False)


def run_query_batch(
    index: SpatialIndex,
    queries: np.ndarray,
    k: int = 21,
    cold: bool = True,
) -> QueryCost:
    """Run a batch of k-NN queries and average their costs.

    ``cold=True`` (the default, matching the paper) drops the buffer
    pool before each query so that page reads count every page touched.
    """
    queries = np.ascontiguousarray(queries, dtype=np.float64)
    if queries.ndim != 2 or queries.shape[0] == 0:
        raise ValueError("expected a non-empty (Q, D) array of query points")
    n = queries.shape[0]

    total_cpu = 0.0
    before_all = index.stats.snapshot()
    metrics_before = REGISTRY.flatten()
    for query in queries:
        if cold:
            index.store.drop_cache()
        start = time.perf_counter()
        index.nearest(query, k)
        total_cpu += time.perf_counter() - start
    delta = index.stats.since(before_all)

    return QueryCost(
        queries=n,
        k=k,
        cpu_ms=total_cpu / n * 1e3,
        page_reads=delta.page_reads / n,
        node_reads=delta.node_reads / n,
        leaf_reads=delta.leaf_reads / n,
        distance_computations=delta.distance_computations / n,
        buffer_hit_ratio=delta.hit_ratio,
        metrics=metrics_delta(metrics_before),
    )


def build_with_cost(kind: str, points: np.ndarray, **kwargs) -> tuple[SpatialIndex, BuildCost]:
    """Build an index over ``points`` and measure the construction cost."""
    points = np.ascontiguousarray(points, dtype=np.float64)
    n = points.shape[0]
    metrics_before = REGISTRY.flatten()
    start = time.perf_counter()
    index = build_index(kind, points, **kwargs)
    elapsed = time.perf_counter() - start
    index.store.flush()
    stats = index.stats.snapshot()
    cost = BuildCost(
        points=n,
        cpu_ms=elapsed / max(n, 1) * 1e3,
        disk_accesses=stats.disk_accesses / max(n, 1),
        page_reads=stats.page_reads / max(n, 1),
        page_writes=stats.page_writes / max(n, 1),
        buffer_hit_ratio=stats.hit_ratio,
        metrics=metrics_delta(metrics_before),
    )
    index.stats.reset()
    return index, cost
