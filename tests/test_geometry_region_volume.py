"""Unit tests for repro.geometry.region and repro.geometry.volume."""

import math

import numpy as np
import pytest

from repro.geometry.rectangle import Rect
from repro.geometry.region import SRRegion
from repro.geometry.sphere import Sphere
from repro.geometry.volume import (
    log_rect_volume,
    log_sphere_volume,
    log_unit_ball_volume,
    rect_volume,
    sphere_volume,
    unit_ball_volume,
)


class TestUnitBallVolume:
    def test_known_values(self):
        assert unit_ball_volume(1) == pytest.approx(2.0)
        assert unit_ball_volume(2) == pytest.approx(math.pi)
        assert unit_ball_volume(3) == pytest.approx(4.0 / 3.0 * math.pi)

    def test_zero_dims_convention(self):
        assert unit_ball_volume(0) == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            log_unit_ball_volume(-1)

    def test_shrinks_in_high_dimensions(self):
        # The famous counterintuitive fact the paper exploits: the unit
        # ball's volume peaks at D=5 and then vanishes as D grows.
        assert unit_ball_volume(5) > unit_ball_volume(2)
        assert unit_ball_volume(16) < unit_ball_volume(8) < unit_ball_volume(5)
        assert unit_ball_volume(64) < 1e-19


class TestSphereVolume:
    def test_scaling_law(self):
        # V(D, r) = V(D, 1) * r^D
        for dims in (2, 7, 16):
            assert sphere_volume(dims, 2.0) == pytest.approx(
                unit_ball_volume(dims) * 2.0**dims
            )

    def test_degenerate(self):
        assert sphere_volume(5, 0.0) == 0.0
        assert log_sphere_volume(5, 0.0) == -math.inf

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            sphere_volume(3, -1.0)

    def test_log_consistency(self):
        assert math.exp(log_sphere_volume(10, 0.7)) == pytest.approx(
            sphere_volume(10, 0.7)
        )


class TestRectVolume:
    def test_simple(self):
        assert rect_volume([0, 0], [2, 3]) == pytest.approx(6.0)

    def test_degenerate(self):
        assert rect_volume([0, 0], [2, 0]) == 0.0
        assert log_rect_volume([0, 0], [2, 0]) == -math.inf

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            rect_volume([1.0], [0.0])

    def test_log_extreme_dims_stable(self):
        # 64 dimensions of extent 1e-4 underflow float64 (1e-256) but the
        # log-domain value is exact.
        low = np.zeros(64)
        high = np.full(64, 1e-4)
        assert log_rect_volume(low, high) == pytest.approx(64 * math.log(1e-4))


class TestSRRegion:
    @pytest.fixture
    def region(self):
        return SRRegion(Sphere([0.5, 0.5], 0.6), Rect([0.0, 0.0], [1.0, 1.0]))

    def test_rejects_dim_mismatch(self):
        with pytest.raises(ValueError):
            SRRegion(Sphere([0.0], 1.0), Rect([0.0, 0.0], [1.0, 1.0]))

    def test_mindist_is_max_of_shapes(self, region):
        q = np.array([2.0, 0.5])
        expected = max(region.sphere.mindist(q), region.rect.mindist(q))
        assert region.mindist(q) == pytest.approx(expected)

    def test_mindist_tighter_than_each_shape(self, region, rng):
        # The combined bound dominates both single-shape bounds.
        for _ in range(50):
            q = rng.random(2) * 4 - 1
            d = region.mindist(q)
            assert d >= region.sphere.mindist(q) - 1e-12
            assert d >= region.rect.mindist(q) - 1e-12

    def test_mindist_valid_lower_bound(self, region, rng):
        # Any point inside the intersection is at least mindist away.
        pts = rng.random((500, 2))
        members = [p for p in pts if region.contains_point(p)]
        assert members, "sample produced no region members"
        q = np.array([3.0, -1.0])
        d = region.mindist(q)
        for p in members:
            assert np.linalg.norm(p - q) >= d - 1e-12

    def test_maxdist_valid_upper_bound(self, region, rng):
        pts = rng.random((500, 2))
        members = [p for p in pts if region.contains_point(p)]
        q = np.array([3.0, -1.0])
        d = region.maxdist(q)
        for p in members:
            assert np.linalg.norm(p - q) <= d + 1e-12

    def test_contains_point_requires_both(self, region):
        # Inside rect, outside sphere.
        assert not region.contains_point([0.0, 1.0] + np.array([0.0, 0.0]))
        corner = np.array([0.999, 0.999])
        assert region.rect.contains_point(corner)
        assert not region.sphere.contains_point(corner)
        assert not region.contains_point(corner)
        assert region.contains_point([0.5, 0.5])

    def test_upper_bound_volume(self, region):
        assert region.upper_bound_volume() == pytest.approx(
            min(region.sphere.volume(), region.rect.volume())
        )

    def test_upper_bound_diameter(self, region):
        assert region.upper_bound_diameter() == pytest.approx(
            min(region.sphere.diameter, region.rect.diagonal)
        )

    def test_dims(self, region):
        assert region.dims == 2
